"""The sweep journal: durability, rotation, replay, and resume."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import JournalError, SweepInterruptedError
from repro.runner import (JOURNAL_SCHEMA, JournalState, ResultCache,
                          SweepJournal, SweepPoint, SweepRunner,
                          result_fingerprint)
from repro.runner.executors import executor


# Registered at import time so fork-based pool workers inherit them.
@executor("journal-probe")
def _run_probe(point):
    return {"doubled": point.knob("x", 0) * 2}


@executor("journal-slow-probe")
def _run_slow_probe(point):
    time.sleep(0.05)
    return {"doubled": point.knob("x", 0) * 2}


def _points(n=5):
    return [SweepPoint.make("journal-probe", label=f"probe-{i}", x=i)
            for i in range(n)]


# ----------------------------------------------------------------------
# File format and lifecycle.
# ----------------------------------------------------------------------
def test_create_writes_schema_header(tmp_path):
    path = tmp_path / "sweep.journal"
    journal = SweepJournal.create(path)
    journal.close()
    first = json.loads(path.read_text().splitlines()[0])
    assert first["event"] == "journal-open"
    assert first["schema"] == JOURNAL_SCHEMA
    assert first["code"]


def test_create_rotates_existing_journal_aside(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal.create(path) as old:
        old.append("done", digest="d1", cached=True)
    journal = SweepJournal.create(path)
    journal.close()
    assert journal.rotated == 1
    assert (tmp_path / "sweep.journal.1").exists()
    # The fresh journal knows nothing about the rotated one's records.
    assert SweepJournal.replay(path).done == {}
    assert "d1" in SweepJournal.replay(f"{path}.1").done


def test_append_replay_roundtrip(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal.create(path) as journal:
        journal.append("submit", digest="a")
        journal.append("submit", digest="b")
        journal.append("done", digest="a", cached=True)
        journal.append("failed", digest="b", error="ValueError: nope")
        assert journal.appended == 5  # header included
    state = SweepJournal.replay(path)
    assert state.completed("a")
    assert "b" in state.failed
    assert state.outstanding() == set()
    assert state.code_version


def test_done_without_cache_store_is_not_completed(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal.create(path) as journal:
        journal.append("done", digest="a", cached=False)
    state = SweepJournal.replay(path)
    assert "a" in state.done
    assert not state.completed("a")  # resume must re-execute it


def test_replay_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal.create(path) as journal:
        journal.append("done", digest="a", cached=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "done", "digest": "b", "cach')  # no \n
    state = SweepJournal.replay(path)
    assert state.completed("a")
    assert "b" not in state.done


def test_replay_rejects_foreign_file(tmp_path):
    path = tmp_path / "not-a-journal.jsonl"
    path.write_text('{"event": "something-else"}\n')
    with pytest.raises(JournalError, match="not a sweep journal"):
        SweepJournal.replay(path)


def test_replay_missing_file_is_typed_error(tmp_path):
    with pytest.raises(JournalError, match="cannot read"):
        SweepJournal.replay(tmp_path / "absent.journal")


def test_later_done_clears_earlier_failure():
    state = JournalState()
    state.apply({"event": "submit", "digest": "a"})
    state.apply({"event": "failed", "digest": "a"})
    state.apply({"event": "done", "digest": "a", "cached": True})
    assert state.completed("a")
    assert "a" not in state.failed


# ----------------------------------------------------------------------
# Engine integration.
# ----------------------------------------------------------------------
def test_runner_journals_every_point(tmp_path):
    path = tmp_path / "sweep.journal"
    cache = ResultCache(tmp_path / "cache", code_version="v")
    runner = SweepRunner(jobs=2, cache=cache, journal=str(path))
    points = _points()
    runner.run(points)
    runner.journal.close()
    state = SweepJournal.replay(path)
    assert len(state.done) == len(points)
    assert all(record["cached"] for record in state.done.values())
    assert state.outstanding() == set()
    assert runner.registry.counter("runner.journal.records").value > 0


def test_resume_reexecutes_nothing_and_is_bit_identical(tmp_path):
    path = tmp_path / "sweep.journal"
    cache = ResultCache(tmp_path / "cache", code_version="v")
    points = _points()
    first = SweepRunner(jobs=2, cache=cache, journal=str(path))
    cold = first.run(points)
    first.journal.close()

    resumed = SweepRunner(jobs=2, cache=cache,
                          journal=SweepJournal.resume(path))
    warm = resumed.run(points)
    resumed.journal.close()
    assert resumed.registry.counter("runner.points.executed").value == 0
    assert resumed.registry.counter("runner.journal.replayed").value == \
        len(points)
    for a, b in zip(cold, warm):
        assert result_fingerprint(a) == result_fingerprint(b)


def test_interrupted_sweep_journals_and_resumes(tmp_path):
    path = tmp_path / "sweep.journal"
    cache = ResultCache(tmp_path / "cache", code_version="v")
    points = [SweepPoint.make("journal-slow-probe", label=f"slow-{i}", x=i)
              for i in range(12)]

    slow = SweepRunner(jobs=2, cache=cache, journal=str(path))
    stop = threading.Event()

    def cancel_after_first_done():
        # Cancel as soon as one point is durably journaled, while
        # plenty of the sweep is still outstanding.
        while not slow.journal.state.done and not stop.wait(0.005):
            pass
        slow.request_cancel()

    watcher = threading.Thread(target=cancel_after_first_done)
    watcher.start()
    try:
        with pytest.raises(SweepInterruptedError, match="outstanding"):
            slow.run(points)
    finally:
        stop.set()
        watcher.join()
        slow.journal.close()

    state = SweepJournal.replay(path)
    assert state.interruptions  # the stop itself is on the record
    completed = sum(1 for digest in state.done if state.completed(digest))
    assert completed >= 1

    resumed = SweepRunner(jobs=2, cache=cache,
                          journal=SweepJournal.resume(path))
    results = resumed.run(points)
    resumed.journal.close()
    # Bit-identical to an uninterrupted run, with the journaled prefix
    # replayed from cache rather than re-executed.
    expected = SweepRunner(jobs=1).run(points)
    for a, b in zip(results, expected):
        assert result_fingerprint(a) == result_fingerprint(b)
    assert resumed.registry.counter("runner.journal.replayed").value \
        >= completed
    assert resumed.registry.counter("runner.points.executed").value \
        <= len(points) - completed


def test_serial_cancellation_is_cooperative(tmp_path):
    path = tmp_path / "sweep.journal"
    runner = SweepRunner(jobs=1, journal=str(path))
    runner.request_cancel()
    with pytest.raises(SweepInterruptedError):
        runner.run(_points(3))
    runner.journal.close()
    assert SweepJournal.replay(path).interruptions


def test_journal_failed_record_for_exhausted_point(tmp_path):
    path = tmp_path / "sweep.journal"
    runner = SweepRunner(jobs=1, journal=str(path))
    with pytest.raises(Exception, match="unknown sweep-point kind"):
        runner.run([SweepPoint.make("journal-bogus")])
    runner.journal.close()
    state = SweepJournal.replay(path)
    assert len(state.failed) == 1
    record = next(iter(state.failed.values()))
    assert "unknown sweep-point kind" in record["error"]
