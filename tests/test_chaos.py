"""Process-level chaos: seeded fault plans and the recovery invariant.

The invariant tests double as the CI ``chaos-matrix`` job: ``CHAOS_SEED``
and ``CHAOS_MODE`` (``worker-exit`` or ``cache-oserror``) parameterize
them from the environment, so the matrix exercises several seeds of
each fault family against the same assertion — chaos on, with recovery
budgets at least the fault budget, is **bit-identical** to chaos off.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import (ConfigError, PointQuarantinedError, RunnerError)
from repro.faults import ChaosConfig, ChaosPlan
from repro.faults.chaos import NO_CHAOS
from repro.runner import (ResultCache, SweepPoint, SweepRunner,
                          result_fingerprint)
from repro.runner.executors import executor

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "7"))
CHAOS_MODE = os.environ.get("CHAOS_MODE", "worker-exit")


# Registered at import time so fork-based pool workers inherit it.
@executor("chaos-probe")
def _run_probe(point):
    return {"squared": point.knob("x", 0) ** 2}


def _points(n=8):
    return [SweepPoint.make("chaos-probe", label=f"chaos-{i}", x=i)
            for i in range(n)]


# ----------------------------------------------------------------------
# The plan: deterministic, budgeted, schedule-independent.
# ----------------------------------------------------------------------
def test_plan_is_a_pure_function_of_seed_digest_attempt():
    config = ChaosConfig(seed=CHAOS_SEED, exit_prob=0.4, delay_prob=0.4,
                         io_error_prob=0.4, faults_budget=3)
    a, b = ChaosPlan(config), ChaosPlan(config)
    for digest in ("d1", "d2", "d3"):
        for attempt in range(4):
            assert a.for_attempt(digest, attempt) == \
                b.for_attempt(digest, attempt)


def test_different_seeds_draw_different_schedules():
    digests = [f"digest-{i}" for i in range(64)]
    one = ChaosPlan(ChaosConfig(seed=1, exit_prob=0.5))
    two = ChaosPlan(ChaosConfig(seed=2, exit_prob=0.5))
    schedule = lambda plan: [plan.for_attempt(d, 0).exit_mid_point
                             for d in digests]
    assert schedule(one) != schedule(two)


def test_attempts_past_the_budget_are_chaos_free():
    config = ChaosConfig(seed=CHAOS_SEED, exit_prob=1.0, io_error_prob=1.0,
                         delay_prob=1.0, faults_budget=2)
    plan = ChaosPlan(config)
    assert plan.for_attempt("digest", 0).any
    assert plan.for_attempt("digest", 1).any
    assert plan.for_attempt("digest", 2) is NO_CHAOS
    assert plan.for_attempt("digest", 99) is NO_CHAOS


def test_exit_suppresses_io_error():
    plan = ChaosPlan(ChaosConfig(seed=CHAOS_SEED, exit_prob=1.0,
                                 io_error_prob=1.0))
    decision = plan.for_attempt("digest", 0)
    assert decision.exit_mid_point and not decision.io_error


def test_config_validation_is_typed():
    with pytest.raises(ConfigError):
        ChaosConfig(exit_prob=1.5)
    with pytest.raises(ConfigError):
        ChaosConfig(max_delay=-1.0)
    with pytest.raises(ConfigError):
        ChaosConfig(faults_budget=-1)


def test_chaos_requires_parallel_execution():
    with pytest.raises(RunnerError, match="jobs > 1"):
        SweepRunner(jobs=1, chaos=ChaosConfig(exit_prob=0.5))


# ----------------------------------------------------------------------
# The invariant: chaos + sufficient budget == bit-identical results.
# ----------------------------------------------------------------------
def test_chaos_within_budget_is_bit_identical():
    points = _points()
    baseline = SweepRunner(jobs=2).run(points)
    if CHAOS_MODE == "cache-oserror":
        chaos = ChaosConfig(seed=CHAOS_SEED, cache_error_prob=1.0,
                            faults_budget=1)
        runner = SweepRunner(jobs=2, chaos=chaos, crash_backoff=0.0)
    else:
        chaos = ChaosConfig(seed=CHAOS_SEED, exit_prob=0.5, delay_prob=0.3,
                            max_delay=0.01, faults_budget=2)
        runner = SweepRunner(jobs=2, chaos=chaos, crash_backoff=0.0,
                             worker_death_budget=3)
    shaken = runner.run(points)
    for a, b in zip(baseline, shaken):
        assert result_fingerprint(a) == result_fingerprint(b)


def test_cache_oserror_chaos_degrades_cache_not_results(tmp_path):
    points = _points()
    baseline = SweepRunner(jobs=2).run(points)
    cache = ResultCache(tmp_path, code_version="v")
    chaos = ChaosConfig(seed=CHAOS_SEED, cache_error_prob=1.0,
                        faults_budget=1)
    runner = SweepRunner(jobs=2, cache=cache, chaos=chaos,
                         crash_backoff=0.0)
    shaken = runner.run(points)
    for a, b in zip(baseline, shaken):
        assert result_fingerprint(a) == result_fingerprint(b)
    # The very first store hit the injected ENOSPC and the cache
    # degraded to store-off — visible in the runner's registry.
    assert cache.store_disabled
    assert cache.store_errors == 1
    assert runner.registry.counter("runner.cache.store_errors").value == 1


def test_io_error_chaos_recovered_by_retries():
    points = _points()
    baseline = SweepRunner(jobs=2).run(points)
    chaos = ChaosConfig(seed=CHAOS_SEED, io_error_prob=0.8, faults_budget=2)
    runner = SweepRunner(jobs=2, chaos=chaos, retries=2, crash_backoff=0.0)
    shaken = runner.run(points)
    for a, b in zip(baseline, shaken):
        assert result_fingerprint(a) == result_fingerprint(b)
    assert runner.registry.counter("runner.points.failed").value == 0


def test_chaos_beyond_budget_is_a_typed_error_never_a_hang():
    # Every attempt exits the worker and the death budget is below the
    # fault budget: the point must be quarantined, not retried forever.
    chaos = ChaosConfig(seed=CHAOS_SEED, exit_prob=1.0, faults_budget=10)
    runner = SweepRunner(jobs=2, chaos=chaos, worker_death_budget=2,
                         crash_backoff=0.0)
    points = _points(3)
    with pytest.raises(RunnerError) as excinfo:
        runner.run(points)
    assert isinstance(excinfo.value.__cause__, PointQuarantinedError)
    assert runner.registry.counter("runner.points.quarantined").value >= 1
    assert runner.registry.counter("runner.pool.rebuilds").value >= 2


def test_io_chaos_beyond_budget_fails_with_the_injected_error():
    chaos = ChaosConfig(seed=CHAOS_SEED, io_error_prob=1.0, faults_budget=5)
    runner = SweepRunner(jobs=2, chaos=chaos, retries=1, crash_backoff=0.0)
    with pytest.raises(RunnerError, match="failed") as excinfo:
        runner.run(_points(2))
    assert isinstance(excinfo.value.__cause__, OSError)
