"""Checkpoint/restore, intra-run sharding, and the cache plumbing
underneath warm starts.

Bit-identity of restore-and-continue against straight-through runs is
pinned per-row in ``test_fastforward_equivalence.py``; this file covers
the machinery around it: snapshot serialization, the
:class:`~repro.runner.ShardedRun` cold/warm protocol and its
stale-cache defense, ``REPRO_CACHE_MAX_BYTES`` LRU pruning, and the
ProgressLine ETA fix for cached/replayed points.
"""

import os
import pickle
import time

import pytest

from repro.core import DataScalarSystem
from repro.errors import RunnerError
from repro.experiments.config import datascalar_config
from repro.runner import ResultCache, ShardedRun, SweepPoint, SweepRunner
from repro.runner.digest import checkpoint_digest, result_fingerprint
from repro.runner.telemetry import ProgressLine
from repro.workloads import build_program

LIMIT = 2_000


def _config(num_nodes=2):
    return datascalar_config(num_nodes=num_nodes)


def _checkpoints(config, limit=LIMIT, every=700):
    program = build_program("compress")
    saved = []
    DataScalarSystem(config).run(program, limit=limit,
                                 checkpoint_every=every,
                                 checkpoint_sink=saved.append)
    return saved


# ----------------------------------------------------------------------
# Snapshot object.
# ----------------------------------------------------------------------
def test_checkpoint_pickles_and_summary_is_stable():
    config = _config()
    saved = _checkpoints(config)
    assert [ckpt.meta["boundary"] for ckpt in saved] == [700, 1400]
    for ckpt in saved:
        blob = pickle.dumps(ckpt)
        clone = pickle.loads(blob)
        assert clone.kind == "datascalar"
        assert clone.cycle == ckpt.cycle
        assert clone.committed == ckpt.committed
        # The deterministic summary is the stitcher's verification key:
        # it must survive serialization exactly.
        assert clone.summary() == ckpt.summary()
        assert clone.describe()["kind"] == "datascalar"


def test_version_mismatch_refuses_restore():
    from repro.checkpoint import materialize
    from repro.errors import SimulationError

    ckpt = _checkpoints(_config())[0]
    ckpt.version = "incompatible"
    with pytest.raises(SimulationError, match="format"):
        materialize(ckpt)


def test_stop_after_emits_final_checkpoint_and_returns_none():
    config = _config()
    program = build_program("compress")
    saved = []
    out = DataScalarSystem(config).run(program, limit=LIMIT,
                                       checkpoint_every=600,
                                       checkpoint_sink=saved.append,
                                       stop_after=600)
    assert out is None
    assert saved and saved[-1].committed >= 600


# ----------------------------------------------------------------------
# ShardedRun: cold populates, warm resumes in parallel, both identical.
# ----------------------------------------------------------------------
def test_sharded_cold_then_warm_bit_identical(tmp_path):
    config = _config()
    program = build_program("compress")
    straight = DataScalarSystem(config).run(program, limit=LIMIT)

    cache = ResultCache(tmp_path)
    sharded = ShardedRun(3, cache=cache, jobs=2)
    cold = sharded.run("compress", limit=LIMIT, config=config)
    assert not sharded.last_warm
    assert sharded.last_boundaries == [667, 1334]
    counters = sharded.registry
    assert counters.counter("runner.checkpoint.saves").value == 2
    assert counters.counter("runner.checkpoint.misses").value == 2
    assert result_fingerprint(cold) == result_fingerprint(straight)

    warm = sharded.run("compress", limit=LIMIT, config=config)
    assert sharded.last_warm
    assert counters.counter("runner.checkpoint.hits").value == 2
    assert result_fingerprint(warm) == result_fingerprint(straight)


def test_sharded_single_shard_never_touches_cache(tmp_path):
    config = _config()
    cache = ResultCache(tmp_path)
    sharded = ShardedRun(1, cache=cache, jobs=1)
    result = sharded.run("compress", limit=LIMIT, config=config)
    assert not sharded.last_warm
    assert sharded.last_boundaries == []
    assert cache.stores == 0
    program = build_program("compress")
    straight = DataScalarSystem(config).run(program, limit=LIMIT)
    assert result_fingerprint(result) == result_fingerprint(straight)


def test_sharded_detects_stale_cache_entry(tmp_path):
    """A checkpoint stored under the wrong boundary's digest (stale or
    foreign entry) must fail the stitch verification loudly instead of
    silently producing a wrong figure."""
    config = _config()
    cache = ResultCache(tmp_path)
    sharded = ShardedRun(3, cache=cache, jobs=1)
    sharded.run("compress", limit=LIMIT, config=config)  # cold populate

    base = SweepPoint.make("datascalar", "compress", limit=LIMIT,
                           config=config)
    b1, b2 = sharded.last_boundaries
    d1 = checkpoint_digest(base, b1, cache.code_version)
    d2 = checkpoint_digest(base, b2, cache.code_version)
    hit, early = cache.load(base, digest=d1)
    assert hit
    # Poison: boundary-b2's slot now serves boundary-b1's state.
    assert cache.store(base, early, digest=d2)

    with pytest.raises(RunnerError, match="stale or foreign"):
        sharded.run("compress", limit=LIMIT, config=config)


# ----------------------------------------------------------------------
# Satellite: REPRO_CACHE_MAX_BYTES LRU pruning.
# ----------------------------------------------------------------------
def _point(tag):
    return SweepPoint.make("esp-schedule", None,
                           broadcast_latency=tag + 1)


def test_cache_lru_pruning_evicts_oldest(tmp_path):
    cache = ResultCache(tmp_path, code_version="t", max_bytes=1)
    # max_bytes=1: every store prunes everything but the newest entry.
    for tag in range(3):
        assert cache.store(_point(tag), {"payload": "x" * 64})
        time.sleep(0.01)  # distinct mtimes for deterministic LRU order
    assert cache.evictions == 2
    hit, _ = cache.load(_point(2))
    assert hit  # the just-stored entry is never evicted
    hit, _ = cache.load(_point(0))
    assert not hit


def test_cache_env_budget_and_hit_touch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "100000")
    cache = ResultCache(tmp_path, code_version="t")
    assert cache.max_bytes == 100_000
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
    assert ResultCache(tmp_path, code_version="t").max_bytes is None

    # A load refreshes mtime, so hot entries survive pruning (LRU, not
    # FIFO): store A then B, touch A via load, then set a budget that
    # forces exactly one eviction — B (now least-recently-used) goes,
    # A stays.
    cache = ResultCache(tmp_path, code_version="t")
    assert cache.store(_point(0), {"payload": "a" * 64})
    time.sleep(0.01)
    assert cache.store(_point(1), {"payload": "b" * 64})
    time.sleep(0.01)
    assert cache.load(_point(0))[0]  # touch A
    time.sleep(0.01)
    sizes = [path.stat().st_size for path in tmp_path.glob("*/*.pkl")]
    cache.max_bytes = sum(sizes)  # room for two entries, not three
    assert cache.store(_point(2), {"payload": "c" * 64})
    assert cache.load(_point(0))[0]
    assert not cache.load(_point(1))[0]


def test_runner_surfaces_eviction_counter(tmp_path):
    cache = ResultCache(tmp_path, code_version="t", max_bytes=1)
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run([_point(tag) for tag in range(3)])
    assert cache.evictions >= 2
    counter = runner.registry.counter("runner.cache.evictions")
    assert counter.value == cache.evictions


# ----------------------------------------------------------------------
# Satellite: ProgressLine ETA must ignore cached/replayed completions.
# ----------------------------------------------------------------------
def test_progress_eta_excludes_cached_points():
    line = ProgressLine(total=10, enabled=False)
    line._start -= 10.0  # pretend 10s have elapsed

    # Position arithmetic (the old fallback): 6 done of which 5 cached
    # looks like 1 executed / 4 remaining -> eta 40s.
    fallback = line.render(6, 5, 0)
    assert "eta 0:40" in fallback

    # True work-unit counts: 1 digest executed, 1 digest remaining
    # (the other 3 remaining positions are dedup copies) -> eta 10s.
    informed = line.render(6, 5, 0, executed=1, remaining=1)
    assert "eta 0:10" in informed

    # Everything so far came from cache/journal: no rate estimate at
    # all rather than an absurdly optimistic one.
    replayed = line.render(6, 6, 0, executed=0, remaining=4)
    assert "eta" not in replayed


def test_progress_eta_serial_sweep_uses_digest_counts(tmp_path, capsys):
    """End to end: a sweep with duplicate points passes unique-digest
    executed/remaining counts through update()."""
    seen = []

    class Spy(ProgressLine):
        def update(self, done, cached, running, slowest=None,
                   executed=None, remaining=None):
            seen.append((done, cached, executed, remaining))

    import repro.runner.engine as engine_mod
    original = engine_mod.ProgressLine
    engine_mod.ProgressLine = Spy
    try:
        runner = SweepRunner(jobs=1,
                             cache=ResultCache(tmp_path, code_version="t"))
        runner.run([_point(0), _point(0), _point(1)])
    finally:
        engine_mod.ProgressLine = original
    # Two unique digests executed; the dedup duplicate never counts as
    # an executed sample.
    assert seen[-1] == (3, 0, 2, 0)
    assert (2, 0, 1, 1) in seen


def test_sharded_warm_bit_identical_under_faults(tmp_path):
    """Sharding composes with seeded fault injection: the shards carry
    the fault layer's RNG, pending retransmits, and recovery ledger
    through the checkpoints."""
    import dataclasses

    from repro.params import FaultConfig
    from repro.workloads import build_program as _build

    faults = FaultConfig(seed=17, receiver_drop_prob=1e-2,
                         corrupt_prob=5e-3, jitter_prob=2e-2,
                         stall_prob=5e-3)
    config = dataclasses.replace(datascalar_config(num_nodes=4),
                                 faults=faults)
    program = _build("compress")
    straight = DataScalarSystem(config).run(program, limit=LIMIT)
    assert straight.extra["faults"]["recovery"]["recovered"] > 0

    sharded = ShardedRun(3, cache=ResultCache(tmp_path), jobs=2)
    cold = sharded.run("compress", limit=LIMIT, config=config)
    warm = sharded.run("compress", limit=LIMIT, config=config)
    assert sharded.last_warm
    assert result_fingerprint(cold) == result_fingerprint(straight)
    assert result_fingerprint(warm) == result_fingerprint(straight)
    assert warm.extra["faults"] == straight.extra["faults"]
