"""Unit tests for datathread-length analysis."""

from repro.core import DatathreadAnalyzer, analyze_stream
from repro.memory import PageTable

PAGE = 4096


def _table():
    """Pages 0,1 owned by node 0; 2,3 by node 1; page 4 replicated."""
    table = PageTable(PAGE, num_owners=2)
    table.map_page(0, replicated=False, owner=0)
    table.map_page(1, replicated=False, owner=0)
    table.map_page(2, replicated=False, owner=1)
    table.map_page(3, replicated=False, owner=1)
    table.map_page(4, replicated=True)
    return table


def _addr(page, offset=0):
    return page * PAGE + offset


def test_single_node_stream_is_one_long_thread():
    refs = [_addr(0, i * 32) for i in range(10)]
    report = analyze_stream(_table(), refs)
    assert report.runs == 1
    assert report.mean_length == 10


def test_owner_change_splits_threads():
    refs = [_addr(0), _addr(0, 32), _addr(2), _addr(2, 32), _addr(2, 64)]
    report = analyze_stream(_table(), refs)
    assert report.runs == 2
    assert report.mean_length == 2.5


def test_interleaved_arrays_cut_threads_to_one():
    """c[i] = a[i] + b[i] with a and b at different owners (the paper's
    explanation for short FP datathreads)."""
    refs = []
    for i in range(8):
        refs.append(_addr(0, i * 8))  # a[i] at node 0
        refs.append(_addr(2, i * 8))  # b[i] at node 1
    report = analyze_stream(_table(), refs)
    assert report.mean_length == 1.0


def test_replicated_references_extend_current_thread():
    refs = [_addr(0), _addr(4), _addr(4, 32), _addr(0, 32)]
    report = analyze_stream(_table(), refs)
    assert report.runs == 1
    assert report.mean_length == 4


def test_leading_replicated_refs_do_not_start_a_thread():
    """The count begins at the first reference to communicated data."""
    refs = [_addr(4), _addr(4, 32), _addr(0)]
    report = analyze_stream(_table(), refs)
    assert report.runs == 1
    assert report.mean_length == 1


def test_replicated_run_lengths_tracked_separately():
    refs = [_addr(4), _addr(4, 32), _addr(0), _addr(4), _addr(0)]
    report = analyze_stream(_table(), refs)
    assert report.replicated_runs == 2
    assert report.mean_replicated_length == 1.5


def test_incremental_observe_equals_batch():
    refs = [_addr(0), _addr(2), _addr(2), _addr(0), _addr(0), _addr(0)]
    analyzer = DatathreadAnalyzer(_table())
    for ref in refs:
        analyzer.observe(ref)
    incremental = analyzer.finish()
    batch = analyze_stream(_table(), refs)
    assert incremental == batch


def test_empty_stream():
    report = analyze_stream(_table(), [])
    assert report.runs == 0
    assert report.mean_length == 0.0
    assert report.references == 0
