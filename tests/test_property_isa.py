"""Property-based tests (hypothesis) for the ISA and interpreter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Interpreter, ProgramBuilder

small_ints = st.integers(min_value=-1000, max_value=1000)
nonzero = small_ints.filter(lambda v: v != 0)


@given(small_ints, small_ints)
@settings(max_examples=150, deadline=None)
def test_add_sub_match_python(a, b):
    builder = ProgramBuilder()
    builder.li("r1", a)
    builder.li("r2", b)
    builder.add("r3", "r1", "r2")
    builder.sub("r4", "r1", "r2")
    builder.halt()
    interp = Interpreter(builder.build())
    interp.run()
    assert interp.registers[3] == a + b
    assert interp.registers[4] == a - b


@given(small_ints, nonzero)
@settings(max_examples=150, deadline=None)
def test_div_rem_identity(a, b):
    """C-style division: a == (a / b) * b + (a % b), |rem| < |b|."""
    builder = ProgramBuilder()
    builder.li("r1", a)
    builder.li("r2", b)
    builder.div("r3", "r1", "r2")
    builder.rem("r4", "r1", "r2")
    builder.halt()
    interp = Interpreter(builder.build())
    interp.run()
    q, r = interp.registers[3], interp.registers[4]
    assert q * b + r == a
    assert abs(r) < abs(b)
    assert r == 0 or (r < 0) == (a < 0)  # remainder takes dividend's sign


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=31))
@settings(max_examples=150, deadline=None)
def test_shift_roundtrip(value, amount):
    builder = ProgramBuilder()
    builder.li("r1", value)
    builder.slli("r2", "r1", amount)
    builder.srli("r3", "r2", amount)
    builder.halt()
    interp = Interpreter(builder.build())
    interp.run()
    # Shifting left then right recovers the value when no bits fell off
    # the 64-bit top.
    if value < (1 << (63 - amount)):
        assert interp.registers[3] == value


@given(st.lists(small_ints, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_memory_preserves_stored_values(values):
    builder = ProgramBuilder()
    base = builder.alloc_global("buf", len(values) * 4)
    for index, value in enumerate(values):
        builder.li("r1", value)
        builder.li("r2", base + 4 * index)
        builder.sw("r1", "r2", 0)
    builder.halt()
    interp = Interpreter(builder.build())
    interp.run()
    for index, value in enumerate(values):
        assert interp.read_word(base + 4 * index) == value


@given(st.lists(small_ints, min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_summation_loop_matches_python(values):
    builder = ProgramBuilder()
    base = builder.alloc_global_words("arr", len(values), init=values)
    builder.li("r1", base)
    builder.li("r2", 0)
    with builder.repeat(len(values), "r3"):
        builder.lw("r4", "r1", 0)
        builder.add("r2", "r2", "r4")
        builder.addi("r1", "r1", 4)
    builder.halt()
    interp = Interpreter(builder.build())
    interp.run()
    assert interp.registers[2] == sum(values)


@given(st.lists(small_ints, min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_trace_length_equals_instruction_count(values):
    builder = ProgramBuilder()
    for index, value in enumerate(values):
        builder.li(f"r{1 + index % 20}", value)
    builder.halt()
    interp = Interpreter(builder.build())
    records = list(interp.trace())
    assert len(records) == len(values) + 1  # plus the halt
    assert [r.seq for r in records] == list(range(len(records)))


@given(st.lists(st.tuples(st.booleans(), small_ints), min_size=1,
                max_size=12))
@settings(max_examples=60, deadline=None)
def test_branches_select_correct_values(choices):
    """A chain of if/else blocks computes the same result as Python."""
    builder = ProgramBuilder()
    builder.li("r2", 0)
    expected = 0
    for index, (take, value) in enumerate(choices):
        builder.li("r1", 1 if take else 0)
        with builder.if_cond("ne", "r1", "r0"):
            builder.li("r3", value)
            builder.add("r2", "r2", "r3")
        if take:
            expected += value
    builder.halt()
    interp = Interpreter(builder.build())
    interp.run()
    assert interp.registers[2] == expected
