"""Unit tests for MSHRs and banked main memory."""

import pytest

from repro.errors import MemoryError_
from repro.memory import BankedMemory, MSHRFile


def test_mshr_allocate_and_retire():
    mshrs = MSHRFile()
    entry = mshrs.allocate(0x100, issued_at=5, target="load-1")
    assert mshrs.lookup(0x100) is entry
    assert mshrs.outstanding() == 1
    retired = mshrs.retire(0x100)
    assert retired.targets == ["load-1"]
    assert mshrs.outstanding() == 0


def test_mshr_merge_secondary_miss():
    mshrs = MSHRFile()
    mshrs.allocate(0x100, issued_at=0, target="a")
    mshrs.merge(0x100, "b")
    assert mshrs.retire(0x100).targets == ["a", "b"]
    assert mshrs.merges == 1


def test_mshr_double_allocate_rejected():
    mshrs = MSHRFile()
    mshrs.allocate(0x100, issued_at=0)
    with pytest.raises(MemoryError_):
        mshrs.allocate(0x100, issued_at=1)


def test_mshr_merge_unknown_line_rejected():
    with pytest.raises(MemoryError_):
        MSHRFile().merge(0x100, "x")


def test_mshr_retire_unknown_line_rejected():
    with pytest.raises(MemoryError_):
        MSHRFile().retire(0x100)


def test_mshr_capacity_enforced():
    mshrs = MSHRFile(capacity=1)
    mshrs.allocate(0x100, issued_at=0)
    assert mshrs.is_full()
    with pytest.raises(MemoryError_):
        mshrs.allocate(0x200, issued_at=0)


def test_mshr_capacity_validation():
    with pytest.raises(MemoryError_):
        MSHRFile(capacity=0)


def test_banked_memory_basic_latency():
    mem = BankedMemory(latency=8, num_banks=4, interleave_bytes=32)
    assert mem.access(now=10, addr=0x0) == 18


def test_banked_memory_same_bank_serializes():
    mem = BankedMemory(latency=8, num_banks=4, interleave_bytes=32)
    first = mem.access(0, 0x0)
    second = mem.access(0, 0x0)  # same bank, queued behind first
    assert first == 8
    assert second == 16
    assert mem.total_wait == 8


def test_banked_memory_different_banks_parallel():
    mem = BankedMemory(latency=8, num_banks=4, interleave_bytes=32)
    a = mem.access(0, 0x0)
    b = mem.access(0, 0x20)  # next line -> next bank
    assert a == 8 and b == 8


def test_banked_memory_bank_mapping_wraps():
    mem = BankedMemory(latency=8, num_banks=4, interleave_bytes=32)
    assert mem.bank_of(0x0) == mem.bank_of(4 * 32)


def test_banked_memory_peek_does_not_reserve():
    mem = BankedMemory(latency=8, num_banks=2, interleave_bytes=32)
    assert mem.peek(0, 0x0) == 8
    assert mem.peek(0, 0x0) == 8
    assert mem.accesses == 0


def test_banked_memory_reset():
    mem = BankedMemory(latency=8, num_banks=2, interleave_bytes=32)
    mem.access(0, 0x0)
    mem.reset()
    assert mem.access(0, 0x0) == 8
    assert mem.accesses == 1


@pytest.mark.parametrize("kwargs", [
    {"latency": 0},
    {"latency": 8, "num_banks": 0},
    {"latency": 8, "interleave_bytes": 0},
])
def test_banked_memory_validation(kwargs):
    with pytest.raises(MemoryError_):
        BankedMemory(**kwargs)
