"""Hierarchical spans: nesting, disabled path, accumulators, breakdown."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import spans
from repro.obs.export import spans_to_chrome_trace, write_spans_chrome_trace
from repro.obs.spans import (SpanRecorder, breakdown, phase_totals,
                             recording, records_as_dicts, span, timed_iter)


def test_nesting_builds_slash_paths():
    recorder = SpanRecorder()
    with recording(recorder):
        with span("point"):
            with span("timing-loop"):
                pass
            with span("analysis"):
                pass
    paths = [record.path for record in recorder.records]
    # Inner spans close (and record) before their parent.
    assert paths == ["point/timing-loop", "point/analysis", "point"]
    assert recorder.records[0].name == "timing-loop"
    assert recorder.records[2].depth == 0


def test_disabled_path_returns_shared_singleton():
    assert spans.active() is None
    first = span("anything")
    second = span("other")
    assert first is second  # no allocation when disabled
    with first:
        pass  # and it is a working no-op context manager


def test_recording_scope_installs_and_restores():
    outer = SpanRecorder()
    inner = SpanRecorder()
    with recording(outer):
        assert spans.active() is outer
        with recording(inner):
            assert spans.active() is inner
        assert spans.active() is outer
    assert spans.active() is None


def test_recording_none_is_a_noop_scope():
    with recording(None) as recorder:
        assert recorder is None
        assert spans.active() is None


def test_exception_unwinds_span_stack():
    recorder = SpanRecorder()
    with recording(recorder):
        with pytest.raises(ValueError):
            with span("outer"):
                with span("inner"):
                    raise ValueError("boom")
        # The stack unwound: a fresh span nests at top level again.
        with span("after"):
            pass
    paths = [record.path for record in recorder.records]
    assert paths == ["outer/inner", "outer", "after"]


def test_span_measures_wall_and_cpu():
    recorder = SpanRecorder()
    with recording(recorder):
        with span("sleepy"):
            time.sleep(0.02)
    record = recorder.records[0]
    assert record.wall >= 0.015
    assert record.count == 1
    assert record.cpu < record.wall  # sleeping burns no CPU


def test_accumulator_sums_intervals_under_path():
    recorder = SpanRecorder()
    with recording(recorder):
        with span("point"):
            acc = recorder.accumulator("frontend", under="timing-loop")
            acc.add(0.25)
            acc.add(0.5, cpu=0.1)
    totals = phase_totals(records_as_dicts(recorder))
    entry = totals["point/timing-loop/frontend"]
    assert entry["wall"] == pytest.approx(0.75)
    assert entry["cpu"] == pytest.approx(0.1)
    assert entry["count"] == 2


def test_timed_iter_charges_iteration_and_preserves_items():
    recorder = SpanRecorder()
    acc = recorder.accumulator("frontend")
    items = list(timed_iter(iter([1, 2, 3]), acc))
    assert items == [1, 2, 3]
    record = recorder.records[0]
    assert record.count == 4  # three items + final StopIteration
    assert record.wall >= 0.0


def test_records_round_trip_through_json():
    recorder = SpanRecorder()
    with recording(recorder):
        with span("point"):
            pass
    rows = records_as_dicts(recorder)
    again = json.loads(json.dumps(rows))
    assert again == rows
    # Rebased to the epoch: the start time is recent wall-clock time.
    assert abs(rows[0]["start"] - time.time()) < 60


def test_breakdown_sums_exactly_to_root():
    recorder = SpanRecorder()
    with recording(recorder):
        with span("point"):
            with span("timing-loop"):
                with span("nested-grandchild"):
                    pass
            with span("analysis"):
                pass
    rows = records_as_dicts(recorder)
    parts = breakdown(rows, root="point")
    assert set(parts) == {"timing-loop", "analysis", "<self>"}
    root_wall = phase_totals(rows)["point"]["wall"]
    assert sum(entry["wall"] for entry in parts.values()) == \
        pytest.approx(root_wall, abs=1e-12)


def test_breakdown_without_root_is_empty():
    assert breakdown([], root="point") == {}


def test_chrome_trace_has_per_worker_tracks(tmp_path):
    def rows(offset):
        recorder = SpanRecorder()
        with recording(recorder):
            with span("point"):
                acc = recorder.accumulator("frontend", under="timing-loop")
                acc.add(0.001)
                acc.add(0.002)
        out = records_as_dicts(recorder)
        for row in out:
            row["start"] += offset
        return out

    tracks = [("worker-100", rows(0.0)), ("worker-200", rows(1.0))]
    trace = spans_to_chrome_trace(tracks)
    events = trace["traceEvents"]
    names = {event["args"]["name"] for event in events
             if event.get("ph") == "M" and event["name"] == "process_name"}
    assert names == {"worker-100", "worker-200"}
    xs = [event for event in events if event["ph"] == "X"]
    assert all(event["ts"] >= 0 for event in xs)
    assert all(event["dur"] >= 1.0 for event in xs)
    # Accumulators (count != 1) land on the dedicated thread track.
    assert any(event["tid"] == 1 for event in xs)

    path = tmp_path / "trace.json"
    write_spans_chrome_trace(str(path), tracks)
    assert json.loads(path.read_text())["traceEvents"]


def test_simulation_results_identical_with_spans_on():
    from repro.experiments.config import timing_node_config, \
        traditional_config
    from repro.runner import SweepPoint, execute_point, result_fingerprint

    node = timing_node_config()
    point = SweepPoint.make("traditional", "compress", limit=1200,
                            config=traditional_config(2, node=node))
    plain = execute_point(point)
    with recording(SpanRecorder()):
        instrumented = execute_point(point)
    assert result_fingerprint(plain) == result_fingerprint(instrumented)
