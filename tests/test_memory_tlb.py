"""Tests for the TLB and its integration into the timing systems."""

import dataclasses

import pytest

from repro.core import DataScalarSystem
from repro.errors import ConfigError
from repro.experiments import datascalar_config, timing_node_config
from repro.memory import BankedMemory
from repro.memory.tlb import TLB
from repro.workloads import build_program

PAGE = 4096


def test_tlb_hit_is_free_miss_costs_walk():
    tlb = TLB(entries=4, walk_latency=10)
    first = tlb.access(100, 0x1000, PAGE)
    assert first == 110  # cold miss
    second = tlb.access(200, 0x1FFC, PAGE)  # same page
    assert second == 200
    assert tlb.stats.hits == 1
    assert tlb.stats.misses == 1


def test_tlb_lru_eviction():
    tlb = TLB(entries=2, walk_latency=5)
    tlb.access(0, 0 * PAGE, PAGE)
    tlb.access(1, 1 * PAGE, PAGE)
    tlb.access(2, 0 * PAGE, PAGE)  # refresh page 0 -> page 1 is LRU
    tlb.access(3, 2 * PAGE, PAGE)  # evicts page 1
    assert 1 * PAGE // PAGE not in tlb.resident_pages()
    assert {0, 2} <= tlb.resident_pages()


def test_tlb_walker_uses_locked_table_memory():
    walker = BankedMemory(latency=8, num_banks=2, interleave_bytes=32)
    tlb = TLB(entries=4, walker=walker)
    done = tlb.access(0, 0x5000, PAGE)
    assert done == 8  # one page-table reference
    assert walker.accesses == 1


def test_tlb_flush():
    tlb = TLB(entries=4, walk_latency=1)
    tlb.access(0, 0x1000, PAGE)
    tlb.flush()
    tlb.access(1, 0x1000, PAGE)
    assert tlb.stats.misses == 2


def test_tlb_validation():
    with pytest.raises(ConfigError):
        TLB(entries=0)
    with pytest.raises(ConfigError):
        TLB(entries=4, walk_latency=-1)


def test_tlb_miss_rate():
    tlb = TLB(entries=8, walk_latency=1)
    assert tlb.stats.miss_rate == 0.0
    tlb.access(0, 0x1000, PAGE)
    tlb.access(1, 0x1000, PAGE)
    assert tlb.stats.miss_rate == 0.5


def test_datascalar_with_tlb_is_slower_on_page_spraying_code():
    """wave5's indirect indices touch many pages: a small TLB hurts."""
    program = build_program("wave5")
    node = timing_node_config()
    base = DataScalarSystem(datascalar_config(2, node=node)).run(
        program, limit=8000)
    tlb_node = dataclasses.replace(node, tlb_entries=4)
    with_tlb = DataScalarSystem(datascalar_config(2, node=tlb_node)).run(
        program, limit=8000)
    assert with_tlb.cycles > base.cycles


def test_tlb_disabled_by_default():
    node = timing_node_config()
    assert node.tlb_entries == 0
