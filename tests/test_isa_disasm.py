"""Round-trip tests: builder -> disassembler -> assembler -> same program."""

import pytest

from repro.isa import Interpreter, ProgramBuilder, assemble, disassemble
from repro.isa.disasm import disassemble_instruction
from repro.workloads import build_program


def _roundtrip_equivalent(program):
    """Reassemble the disassembly and compare instruction streams."""
    text = disassemble(program)
    rebuilt = assemble(text, name=f"{program.name}-rt")
    original = program.instructions
    again = rebuilt.instructions[: len(original)]
    assert len(again) == len(original)
    for a, b in zip(original, again):
        assert a.op == b.op
        assert a.rd == b.rd
        assert a.rs1 == b.rs1
        assert a.rs2 == b.rs2
        assert a.imm == b.imm
        assert a.target == b.target
    return rebuilt


def test_roundtrip_simple_program():
    b = ProgramBuilder()
    base = b.alloc_global("buf", 64)
    b.li("r1", base)
    b.li("r2", 5)
    with b.repeat(4, "r3"):
        b.sw("r2", "r1", 0)
        b.lw("r4", "r1", 0)
        b.addi("r1", "r1", 4)
    b.halt()
    _roundtrip_equivalent(b.build())


def test_roundtrip_fp_and_calls():
    b = ProgramBuilder()
    base = b.alloc_global("d", 32)
    b.init_double(base, 2.0)
    b.li("r1", base)
    b.ld("f1", "r1", 0)
    b.fmul("f2", "f1", "f1")
    b.cvtfi("r2", "f2")
    b.call("fn")
    b.halt()
    b.label("fn")
    b.fneg("f3", "f2")
    b.ret()
    _roundtrip_equivalent(b.build())


@pytest.mark.parametrize("name", sorted(__import__(
    "repro.workloads", fromlist=["WORKLOADS"]).WORKLOADS))
def test_roundtrip_workload_kernels(name):
    """Every kernel disassembles and reassembles losslessly — covering
    every instruction form the workloads exercise."""
    _roundtrip_equivalent(build_program(name))


def test_reassembled_program_computes_same_result():
    b = ProgramBuilder()
    b.li("r1", 0)
    with b.repeat(10, "r2"):
        b.addi("r1", "r1", 3)
    b.halt()
    program = b.build()
    rebuilt = _roundtrip_equivalent(program)
    one = Interpreter(program)
    one.run()
    two = Interpreter(rebuilt)
    two.run()
    assert one.registers[1] == two.registers[1] == 30


def test_disassemble_instruction_formats():
    b = ProgramBuilder()
    b.add("r1", "r2", "r3")
    b.lw("r4", "r5", 8)
    b.sw("r4", "r5", -4)
    b.li("r6", 99)
    b.halt()
    program = b.build()
    texts = [disassemble_instruction(i) for i in program.instructions]
    assert texts[0] == "add r1, r2, r3"
    assert texts[1] == "lw r4, r5, 8"
    assert texts[2] == "sw r4, r5, -4"
    assert texts[3] == "li r6, 99"
    assert texts[4] == "halt"


def test_disassemble_uses_original_label_names():
    b = ProgramBuilder()
    b.label("top")
    b.addi("r1", "r1", 1)
    b.j("top")
    b.halt()
    text = disassemble(b.build())
    assert "top:" in text
    assert "j top" in text
