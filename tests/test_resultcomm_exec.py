"""Tests for executed result communication (Section 5.1)."""

import pytest

from repro.core.resultcomm_exec import (
    ExecRegion,
    ResultCommSystem,
    filter_trace,
    mailbox_address,
    run_with_result_communication,
    select_exec_regions,
)
from repro.experiments import datascalar_config, timing_node_config
from repro.isa import Interpreter, ProgramBuilder
from repro.isa.opcodes import OpClass
from repro.workloads import build_program

PAGE = 4096


def _config(num_nodes=2):
    return datascalar_config(num_nodes, node=timing_node_config())


def _two_region_program(run_len=24):
    """Loads clustered on page 0 (owner 0), then on page 1 (owner 1)."""
    b = ProgramBuilder("regions")
    arr = b.alloc_global("arr", 2 * PAGE)
    for start in (0, PAGE):
        b.li("r1", arr + start)
        b.li("r2", 0)
        with b.repeat(run_len, "r3"):
            b.lw("r4", "r1", 0)
            b.add("r2", "r2", "r4")
            b.addi("r1", "r1", 32)
    b.halt()
    return b.build()


# ----------------------------------------------------------------------
# Mailbox and region plumbing.
# ----------------------------------------------------------------------
def test_mailbox_address_lands_on_owner_page():
    for region in range(5):
        for owner in range(4):
            addr = mailbox_address(region, owner, num_nodes=4,
                                   page_size=PAGE)
            assert (addr // PAGE) % 4 == owner


def test_mailbox_addresses_are_unique_per_region():
    addrs = {mailbox_address(r, r % 2, 2, PAGE) for r in range(20)}
    assert len(addrs) == 20


def test_exec_region_validation():
    with pytest.raises(ValueError):
        ExecRegion(start_seq=10, end_seq=5, owner=0)


def test_select_exec_regions_finds_page_runs():
    from repro.memory.layout import LayoutSpec, build_page_table

    program = _two_region_program()
    spec = LayoutSpec(num_nodes=2, page_size=PAGE,
                      distribution_block_pages=1)
    table, _ = build_page_table(program, spec)
    regions = select_exec_regions(program, table, min_loads=8)
    assert len(regions) == 2
    assert {r.owner for r in regions} == {0, 1}


# ----------------------------------------------------------------------
# Trace filtering.
# ----------------------------------------------------------------------
def _filtered(program, regions, node_id):
    return list(filter_trace(Interpreter(program).trace(), regions,
                             node_id, num_nodes=2, page_size=PAGE))


def test_filter_owner_keeps_region_with_private_mem_ops():
    program = _two_region_program()
    regions = [ExecRegion(5, 20, owner=0)]
    records = _filtered(program, regions, node_id=0)
    in_region = [r for r in records
                 if r.private and r.op_class == int(OpClass.LOAD)]
    assert in_region  # owner's region loads are private
    # Sequence numbers are dense and increasing.
    assert [r.seq for r in records] == list(range(len(records)))


def test_filter_nonowner_skips_region_and_gets_mailbox():
    program = _two_region_program()
    regions = [ExecRegion(5, 20, owner=0)]
    owner = _filtered(program, regions, node_id=0)
    other = _filtered(program, regions, node_id=1)
    assert len(other) < len(owner)
    mailbox = [r for r in other
               if r.addr is not None and r.addr >= 0x8000_0000]
    assert len(mailbox) == 1
    assert not any(r.private for r in other)


def test_filter_owner_mailbox_depends_on_region_result():
    program = _two_region_program()
    regions = [ExecRegion(5, 20, owner=0)]
    owner = _filtered(program, regions, node_id=0)
    mailbox = [r for r in owner
               if r.addr is not None and r.addr >= 0x8000_0000][0]
    assert mailbox.srcs  # carries a dependence at the owner


# ----------------------------------------------------------------------
# End to end.
# ----------------------------------------------------------------------
def test_resultcomm_reduces_broadcasts_and_runs_clean():
    program = build_program("gcc")
    base, optimized, regions = run_with_result_communication(
        program, _config(), min_loads=6, limit=8000)
    assert regions
    b_base = sum(n.broadcasts_sent for n in base.nodes)
    b_opt = sum(n.broadcasts_sent for n in optimized.nodes)
    assert b_opt < b_base
    assert optimized.cycles <= base.cycles * 1.1


def test_resultcomm_without_regions_equals_baseline():
    program = _two_region_program()
    config = _config()
    from repro.core import DataScalarSystem
    base = DataScalarSystem(config).run(program)
    same = ResultCommSystem(config, regions=[]).run(program)
    assert same.cycles == base.cycles


def test_resultcomm_nodes_commit_different_counts():
    program = _two_region_program()
    regions = [ExecRegion(5, 40, owner=0)]
    result = ResultCommSystem(_config(), regions).run(program)
    committed = [n.pipeline.committed for n in result.nodes]
    assert committed[0] != committed[1]
    assert result.instructions == max(committed)


def test_result_communication_config_flag_delegates():
    """SystemConfig.result_communication auto-detects regions."""
    import dataclasses

    from repro.core import DataScalarSystem

    program = build_program("gcc")
    flagged = dataclasses.replace(_config(), result_communication=True)
    optimized = DataScalarSystem(flagged).run(program, limit=6000)
    plain = DataScalarSystem(_config()).run(program, limit=6000)
    assert (sum(n.broadcasts_sent for n in optimized.nodes)
            < sum(n.broadcasts_sent for n in plain.nodes))
