"""Unit tests for traffic accounting, statistics, and the cost model."""

import pytest

from repro.analysis import (
    CostModel,
    TrafficReport,
    arithmetic_mean,
    format_percent,
    format_table,
    geometric_mean,
    harmonic_mean,
    measure_esp_traffic,
    speedup,
)
from repro.analysis.stats import RunningMean
from repro.errors import ConfigError
from repro.isa import ProgramBuilder
from repro.params import CacheConfig


# ----------------------------------------------------------------------
# TrafficReport arithmetic.
# ----------------------------------------------------------------------
def test_traffic_report_conventional_vs_esp_bytes():
    report = TrafficReport(misses=100, writebacks=50, accesses=1000,
                           line_size=32, tag_bytes=8)
    assert report.conventional_bytes == 100 * 8 + 100 * 40 + 50 * 40
    assert report.esp_bytes == 100 * 40
    assert 0 < report.bytes_eliminated < 1


def test_transaction_elimination_is_at_least_half():
    """No requests are sent, so at least half the transactions vanish."""
    for writebacks in (0, 10, 100):
        report = TrafficReport(misses=100, writebacks=writebacks,
                               accesses=1000, line_size=32)
        assert report.transactions_eliminated >= 0.5


def test_more_writebacks_means_more_elimination():
    low = TrafficReport(misses=100, writebacks=10, accesses=0, line_size=32)
    high = TrafficReport(misses=100, writebacks=90, accesses=0, line_size=32)
    assert high.bytes_eliminated > low.bytes_eliminated
    assert high.transactions_eliminated > low.transactions_eliminated


def test_empty_report_is_zero():
    report = TrafficReport(misses=0, writebacks=0, accesses=0, line_size=32)
    assert report.bytes_eliminated == 0.0
    assert report.transactions_eliminated == 0.0


# ----------------------------------------------------------------------
# measure_esp_traffic end to end.
# ----------------------------------------------------------------------
def _rw_program(words=4096):
    b = ProgramBuilder()
    arr = b.alloc_global("arr", words * 4)
    b.li("r1", arr)
    with b.repeat(words, "r3"):
        b.lw("r4", "r1", 0)
        b.addi("r4", "r4", 1)
        b.sw("r4", "r1", 0)
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def test_measure_esp_traffic_counts_misses_and_writebacks():
    cache = CacheConfig(size_bytes=1024, assoc=2, line_size=32,
                        write_policy="writeback", write_allocate=True)
    report = measure_esp_traffic(_rw_program(), cache_config=cache)
    # Streaming read+write over 16KB with a 1KB cache: every line misses
    # once and is evicted dirty.
    assert report.misses >= 4096 * 4 // 32
    assert report.writebacks > 0
    assert 0.4 < report.transactions_eliminated <= 0.75
    assert 0.2 < report.bytes_eliminated < 0.6


def test_measure_esp_traffic_respects_limit():
    small = measure_esp_traffic(_rw_program(), limit=100)
    full = measure_esp_traffic(_rw_program())
    assert small.accesses < full.accesses


# ----------------------------------------------------------------------
# Statistics helpers.
# ----------------------------------------------------------------------
def test_means():
    assert arithmetic_mean([1, 2, 3]) == 2.0
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert harmonic_mean([1, 1]) == pytest.approx(1.0)
    assert arithmetic_mean([]) == 0.0
    assert geometric_mean([]) == 0.0
    assert harmonic_mean([]) == 0.0


def test_geometric_mean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_running_mean():
    running = RunningMean()
    for value in (1.0, 3.0, 5.0):
        running.add(value)
    assert running.mean == 3.0
    assert running.minimum == 1.0
    assert running.maximum == 5.0
    assert RunningMean().mean == 0.0


def test_speedup():
    assert speedup(200, 100) == 2.0
    with pytest.raises(ValueError):
        speedup(100, 0)


# ----------------------------------------------------------------------
# Cost model.
# ----------------------------------------------------------------------
def test_costup_grows_sublinearly_when_memory_dominates():
    model = CostModel(processor_cost=1.0, memory_cost=10.0,
                      overhead_cost=0.0)
    assert model.costup(1) == 1.0
    assert model.costup(4) < 4.0
    assert model.costup(2) < model.costup(4)


def test_cost_effectiveness_criterion():
    model = CostModel(processor_cost=1.0, memory_cost=10.0)
    costup = model.costup(2)
    assert model.is_cost_effective(2, speedup=costup + 0.1)
    assert not model.is_cost_effective(2, speedup=costup - 0.1)
    assert model.breakeven_speedup(2) == costup


def test_replication_raises_cost():
    none = CostModel(memory_cost=10.0, replicated_fraction=0.0)
    some = CostModel(memory_cost=10.0, replicated_fraction=0.5)
    assert some.system_cost(4) > none.system_cost(4)


def test_cost_model_validation():
    with pytest.raises(ConfigError):
        CostModel(processor_cost=-1)
    with pytest.raises(ConfigError):
        CostModel(replicated_fraction=1.5)
    with pytest.raises(ConfigError):
        CostModel().system_cost(0)
    with pytest.raises(ConfigError):
        CostModel().is_cost_effective(2, speedup=0)


# ----------------------------------------------------------------------
# Report formatting.
# ----------------------------------------------------------------------
def test_format_table_alignment_and_title():
    text = format_table(["name", "ipc"], [["go", 1.25], ["compress", 2.0]],
                        title="Figure 7")
    lines = text.splitlines()
    assert lines[0] == "Figure 7"
    assert "name" in lines[1] and "ipc" in lines[1]
    assert len(lines) == 5


def test_format_percent():
    assert format_percent(0.375) == "38%"
    assert format_percent(0.375, digits=1) == "37.5%"


# ----------------------------------------------------------------------
# Percentiles and distributions (recovery-latency reporting).
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    from repro.analysis import percentile
    values = [10, 20, 30, 40, 50]
    assert percentile(values, 0) == 10
    assert percentile(values, 50) == 30
    assert percentile(values, 95) == 50
    assert percentile(values, 100) == 50
    assert percentile([], 50) == 0.0


def test_distribution_summary():
    from repro.analysis import Distribution
    dist = Distribution()
    assert dist.summary() == {"count": 0, "mean": 0.0, "p50": 0.0,
                              "p95": 0.0, "max": 0.0}
    for value in (4, 8, 100):
        dist.add(value)
    summary = dist.summary()
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(112 / 3)
    assert summary["p50"] == 8
    assert summary["max"] == 100


def test_format_fault_summary():
    from repro.analysis import format_fault_summary
    faults = {
        "seed": 11,
        "injected": {"broadcast_drops": 1, "receiver_drops": 2,
                     "corruptions": 3, "jitter_events": 4,
                     "jitter_cycles": 9, "stalls": 5, "injected": 6},
        "recovery": {"timeouts": 3, "nacks": 3, "requests": 7,
                     "retransmits": 7, "recovered": 6,
                     "retry_high_water": 2,
                     "payload_bytes": 192, "busy_cycles": 300,
                     "latency": {"count": 6, "mean": 40.0, "p50": 36,
                                 "p95": 100, "max": 120}},
    }
    text = format_fault_summary(faults)
    assert "seed 11" in text
    assert "recovered" in text
    assert "36/100/120" in text
