"""Property-based tests (hypothesis) for the DataScalar core mechanisms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MassiveMemoryMachine, analyze_stream
from repro.core.bshr import BSHRFile
from repro.cpu.interface import LoadHandle
from repro.interconnect import Bus, Message, MessageKind
from repro.memory import PageTable
from repro.params import BSHRConfig, BusConfig

# ----------------------------------------------------------------------
# Synchronous ESP invariants.
# ----------------------------------------------------------------------
owner_strings = st.lists(st.integers(min_value=0, max_value=3), max_size=60)


@given(owner_strings)
@settings(max_examples=200, deadline=None)
def test_esp_receive_times_strictly_increase(owners):
    result = MassiveMemoryMachine(4).schedule(owners)
    times = result.receive_times
    assert all(a < b for a, b in zip(times, times[1:]))


@given(owner_strings, st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=200, deadline=None)
def test_esp_total_cycles_formula(owners, latency, extra):
    penalty = latency + extra
    mmm = MassiveMemoryMachine(4, broadcast_latency=latency,
                               lead_change_penalty=penalty)
    result = mmm.schedule(owners)
    expected = (len(owners) * latency
                + result.lead_changes * (penalty - latency))
    assert result.total_cycles == expected


@given(owner_strings)
@settings(max_examples=200, deadline=None)
def test_esp_datathreads_partition_the_string(owners):
    result = MassiveMemoryMachine(4).schedule(owners)
    assert sum(result.datathreads) == len(owners)
    assert all(length >= 1 for length in result.datathreads)


# ----------------------------------------------------------------------
# Bus invariants.
# ----------------------------------------------------------------------
transfers = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1000),   # request time
              st.integers(min_value=0, max_value=128)),   # payload bytes
    max_size=60,
)


@given(transfers)
@settings(max_examples=200, deadline=None)
def test_bus_transactions_never_overlap(requests):
    bus = Bus(BusConfig())
    windows = []
    for now, payload in sorted(requests):
        message = Message(MessageKind.BROADCAST, 0, 0x100, payload)
        start, done = bus.transfer(now, message)
        assert start >= now
        assert done > start
        windows.append((start, done))
    for (_, prev_done), (start, _) in zip(windows, windows[1:]):
        assert start >= prev_done


@given(transfers)
@settings(max_examples=100, deadline=None)
def test_bus_busy_cycles_equal_sum_of_transfers(requests):
    config = BusConfig()
    bus = Bus(config)
    expected = 0
    for now, payload in requests:
        bus.transfer(now, Message(MessageKind.BROADCAST, 0, 0x100, payload))
        expected += config.transfer_cycles(payload)
    assert bus.stats.busy_cycles == expected


# ----------------------------------------------------------------------
# BSHR liveness: with one arrival per wait (plus one per discard), every
# load completes and nothing leaks, regardless of interleaving.
# ----------------------------------------------------------------------
@st.composite
def bshr_scenarios(draw):
    lines = draw(st.lists(st.sampled_from([0x100, 0x200, 0x300]),
                          min_size=1, max_size=20))
    # events: for each line occurrence, one wait and one arrival, plus
    # some discard+arrival pairs; hypothesis shuffles the order.
    events = []
    for index, line in enumerate(lines):
        events.append(("wait", line))
        events.append(("arrival", line))
    extra = draw(st.lists(st.sampled_from([0x100, 0x200, 0x300]),
                          max_size=5))
    for line in extra:
        events.append(("discard", line))
        events.append(("arrival", line))
    return draw(st.permutations(events))


@given(bshr_scenarios())
@settings(max_examples=200, deadline=None)
def test_bshr_liveness_under_any_interleaving(events):
    bshr = BSHRFile(BSHRConfig(entries=64, access_latency=1))
    handles = []
    time = 0
    for kind, line in events:
        time += 1
        if kind == "wait":
            handle = LoadHandle(line, 4, time)
            handles.append(handle)
            bshr.load(time, line, handle)
        elif kind == "arrival":
            bshr.arrival(time, line)
        else:
            bshr.schedule_discard(line)
    # Allowed skew: a discard scheduled before its arrival may consume an
    # arrival a wait needed; drain with one extra arrival per open wait.
    for line in (0x100, 0x200, 0x300):
        while bshr.outstanding_waits() and any(
                h.ready is None and h.addr == line for h in handles):
            time += 1
            bshr.arrival(time, line)
    assert bshr.outstanding_waits() == 0
    for handle in handles:
        assert handle.ready is not None
        assert handle.ready >= handle.issued_at


# ----------------------------------------------------------------------
# Datathread accounting.
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=4), max_size=80))
@settings(max_examples=200, deadline=None)
def test_datathread_runs_cover_communicated_references(pages):
    """Every communicated reference lands in exactly one run; replicated
    references only ever extend runs."""
    table = PageTable(4096, num_owners=2)
    for page in range(4):
        table.map_page(page, replicated=False, owner=page % 2)
    table.map_page(4, replicated=True)
    addrs = [page * 4096 for page in pages]
    report = analyze_stream(table, addrs)
    communicated = sum(1 for page in pages if page != 4)
    # Total run length = communicated refs + replicated refs that fell
    # inside an open run — bounded by the total reference count.
    total_run_length = report.mean_length * report.runs
    assert communicated <= total_run_length + 1e-9 or report.runs == 0
    assert total_run_length <= len(pages) + 1e-9
    assert report.references == len(pages)
