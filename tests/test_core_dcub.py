"""Unit tests for the Data Commit Update Buffer."""

import pytest

from repro.core.dcub import DCUB
from repro.cpu.interface import LoadHandle
from repro.errors import ProtocolError


def _handle(now=0):
    return LoadHandle(0x100, 4, now)


def test_allocate_lookup_release_cycle():
    dcub = DCUB()
    entry = dcub.allocate(0x100, now=0)
    assert dcub.lookup(0x100) is entry
    assert dcub.release(0x100) is True
    assert dcub.lookup(0x100) is None


def test_double_allocate_rejected():
    dcub = DCUB()
    dcub.allocate(0x100, 0)
    with pytest.raises(ProtocolError):
        dcub.allocate(0x100, 1)


def test_release_unknown_rejected():
    with pytest.raises(ProtocolError):
        DCUB().release(0x100)


def test_merge_after_resolution_completes_immediately():
    dcub = DCUB()
    entry = dcub.allocate(0x100, 0)
    entry.resolve(50)
    handle = _handle(now=60)
    dcub.merge(entry, 60, handle)
    assert handle.ready == 61  # data already there; one-cycle service
    assert dcub.merges == 1


def test_merge_before_resolution_waits_for_it():
    dcub = DCUB()
    entry = dcub.allocate(0x100, 0)
    handle = _handle(now=5)
    dcub.merge(entry, 5, handle)
    assert handle.ready is None
    entry.resolve(40)
    assert handle.ready == 40


def test_refcounted_deallocation():
    dcub = DCUB()
    entry = dcub.allocate(0x100, 0)
    entry.resolve(10)
    dcub.merge(entry, 1, _handle())
    dcub.merge(entry, 2, _handle())
    assert dcub.release(0x100) is False
    assert dcub.release(0x100) is False
    assert dcub.release(0x100) is True
    assert dcub.occupancy() == 0


def test_dealloc_with_unresolved_merges_rejected():
    dcub = DCUB()
    entry = dcub.allocate(0x100, 0)
    dcub.merge(entry, 1, _handle())
    dcub.release(0x100)  # primary commits...
    with pytest.raises(ProtocolError):
        dcub.release(0x100)  # ...but the merged access never resolved


def test_assert_drained():
    dcub = DCUB()
    dcub.allocate(0x100, 0)
    with pytest.raises(ProtocolError):
        dcub.assert_drained()


def test_high_water_tracks_peak_occupancy():
    dcub = DCUB()
    dcub.allocate(0x100, 0)
    dcub.allocate(0x200, 0)
    dcub.release(0x100)
    dcub.allocate(0x300, 0)
    assert dcub.high_water == 2
