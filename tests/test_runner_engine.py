"""The sweep engine: ordering, bit-identity, dedup, failures, metrics."""

from __future__ import annotations

import pytest

from repro.errors import PointTimeoutError, ReproError, RunnerError
from repro.experiments.config import datascalar_config, timing_node_config, \
    traditional_config
from repro.runner import (ResultCache, SweepPoint, SweepRunner,
                          execute_point, get_default_runner,
                          result_fingerprint, set_default_runner,
                          using_runner)
from repro.runner.executors import EXECUTORS

LIMIT = 1500


def _mixed_points():
    node = timing_node_config()
    return [
        SweepPoint.make("perfect", "compress", limit=LIMIT,
                        config=node.cpu),
        SweepPoint.make("datascalar", "compress", limit=LIMIT,
                        config=datascalar_config(2, node=node)),
        SweepPoint.make("traditional", "compress", limit=LIMIT,
                        config=traditional_config(2, node=node)),
        SweepPoint.make("datascalar", "go", limit=LIMIT,
                        config=datascalar_config(2, node=node)),
    ]


def test_unknown_kind_is_a_typed_error():
    with pytest.raises(ReproError, match="unknown sweep-point kind"):
        execute_point(SweepPoint.make("nope"))


def test_invalid_jobs_rejected():
    with pytest.raises(RunnerError):
        SweepRunner(jobs=-2)


def test_results_come_back_in_point_order():
    points = _mixed_points()
    results = SweepRunner(jobs=1).run(points)
    assert len(results) == len(points)
    # Each result matches a direct, runner-free execution of its point.
    for point, result in zip(points, results):
        assert result_fingerprint(result) == \
            result_fingerprint(execute_point(point))


def test_parallel_matches_serial_bit_for_bit():
    points = _mixed_points()
    serial = SweepRunner(jobs=1).run(points)
    parallel = SweepRunner(jobs=2).run(points)
    for a, b in zip(serial, parallel):
        assert result_fingerprint(a) == result_fingerprint(b)


def test_cached_matches_executed_bit_for_bit(tmp_path):
    points = _mixed_points()
    cache = ResultCache(tmp_path, code_version="v")
    cold = SweepRunner(jobs=1, cache=cache).run(points)
    warm_runner = SweepRunner(jobs=1, cache=cache)
    warm = warm_runner.run(points)
    assert warm_runner.registry.counter("runner.points.executed").value == 0
    for a, b in zip(cold, warm):
        assert result_fingerprint(a) == result_fingerprint(b)


def test_identical_points_execute_once():
    point = _mixed_points()[1]
    runner = SweepRunner(jobs=1)
    results = runner.run([point, point, point])
    assert results[0] is results[1] is results[2]
    registry = runner.registry
    assert registry.counter("runner.points.executed").value == 1
    assert registry.counter("runner.points.deduped").value == 2


def test_serial_failure_propagates_unchanged():
    runner = SweepRunner(jobs=1)
    with pytest.raises(ReproError, match="unknown sweep-point kind"):
        runner.run([SweepPoint.make("bogus")])
    assert runner.registry.counter("runner.points.failed").value == 1


def test_parallel_failure_is_deterministic_and_chained():
    points = [
        _mixed_points()[0],
        SweepPoint.make("bogus-a", label="first-bad"),
        SweepPoint.make("bogus-b", label="second-bad"),
    ]
    runner = SweepRunner(jobs=2)
    with pytest.raises(RunnerError, match="first-bad") as excinfo:
        runner.run(points)
    assert isinstance(excinfo.value.__cause__, ReproError)


def _flaky(point):
    """Fails on the first attempt per process, then succeeds."""
    counts = _flaky.__dict__.setdefault("counts", {"n": 0})
    counts["n"] += 1
    if counts["n"] == 1:
        raise ValueError("transient")
    return "ok"


def test_serial_retry_recovers():
    EXECUTORS["flaky"] = _flaky
    try:
        _flaky.__dict__.pop("counts", None)
        runner = SweepRunner(jobs=1, retries=1)
        assert runner.run([SweepPoint.make("flaky")]) == ["ok"]
        assert runner.registry.counter("runner.points.retried").value == 1
        assert runner.registry.counter("runner.points.failed").value == 0
    finally:
        EXECUTORS.pop("flaky", None)


def test_serial_retries_exhaust():
    EXECUTORS["alwaysbad"] = lambda point: (_ for _ in ()).throw(
        ValueError("permanent"))
    try:
        runner = SweepRunner(jobs=1, retries=2)
        with pytest.raises(ValueError, match="permanent"):
            runner.run([SweepPoint.make("alwaysbad")])
        assert runner.registry.counter("runner.points.retried").value == 2
        assert runner.registry.counter("runner.points.failed").value == 1
    finally:
        EXECUTORS.pop("alwaysbad", None)


def test_metrics_surface_through_registry(tmp_path):
    points = _mixed_points()
    cache = ResultCache(tmp_path, code_version="v")
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run(points)
    runner.run(points)
    metrics = runner.registry.as_dict()
    assert metrics["runner.points.total"] == 2 * len(points)
    assert metrics["runner.points.executed"] == len(points)
    assert metrics["runner.cache.hit"] == len(points)
    assert metrics["runner.cache.miss"] == len(points)
    assert metrics["runner.point_seconds"]["count"] == len(points)
    assert len(metrics["runner.completed_at"]) == len(points)
    assert metrics["runner.wall_seconds"] > 0


def test_summary_line_is_greppable(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run([_mixed_points()[0]])
    warm = SweepRunner(jobs=1, cache=cache)
    warm.run([_mixed_points()[0]])
    line = warm.summary()
    assert line.startswith("[runner] jobs=1 ")
    assert "cache_hit_rate=100%" in line


def test_default_runner_roundtrip():
    assert get_default_runner().jobs == 1
    custom = SweepRunner(jobs=1)
    with using_runner(custom) as active:
        assert active is custom
        assert get_default_runner() is custom
    assert get_default_runner() is not custom


def test_timeout_error_type_exists():
    assert issubclass(PointTimeoutError, RunnerError)
    assert issubclass(RunnerError, ReproError)
