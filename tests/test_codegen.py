"""Program-specialized code generation must be invisible.

:mod:`repro.isa.codegen` compiles a (program, config) pair into a flat
generated stepper.  These tests pin down the contract: the generated
source is a pure function of its inputs (deterministic, memoized), every
run mode is bit-identical to the interpreter — records, architectural
state, error messages, limit semantics — for every bundled workload, and
the fallback/selection rules behave exactly as documented.  The runner's
digests must also see the engine choice so both front ends cache as
distinct results.
"""

import dataclasses

import pytest

from repro.errors import ExecutionError
from repro.isa.builder import ProgramBuilder
from repro.isa.codegen import (CODEGEN_VERSION, CodegenSpec,
                               CompiledExecution, UnsupportedProgramError,
                               clear_codegen_cache, compile_program,
                               emit_source, make_execution,
                               make_trace_source, program_digest,
                               resolve_engine, supports)
from repro.isa.interpreter import Interpreter
from repro.workloads import WORKLOADS, build_program

ALL_WORKLOADS = sorted(WORKLOADS)
LIMIT = 1_500


def _records(trace):
    """Every slot of every DynInstr, as comparable tuples."""
    return [tuple(getattr(d, slot) for slot in d.__slots__) for d in trace]


def _state(execution):
    return {
        "registers": list(execution.registers),
        "memory": dict(execution.memory),
        "instructions": execution.instructions_executed,
        "loads": execution.loads,
        "stores": execution.stores,
        "halted": execution.halted,
    }


# ----------------------------------------------------------------------
# Source generation: deterministic, spec-sensitive, memoized.
# ----------------------------------------------------------------------
def test_source_is_deterministic():
    program = build_program("compress")
    spec = CodegenSpec()
    assert emit_source(program, spec) == emit_source(program, spec)


def test_source_varies_with_spec():
    program = build_program("compress")
    trace_src = emit_source(program, CodegenSpec(grain="trace"))
    run_src = emit_source(program, CodegenSpec(grain="run"))
    ref_src = emit_source(program, CodegenSpec(grain="memrefs"))
    data_src = emit_source(program, CodegenSpec(grain="memrefs",
                                                include_ifetch=False))
    assert len({trace_src, run_src, ref_src, data_src}) == 4


def test_compile_is_memoized_per_program_and_spec():
    program = build_program("mgrid")
    spec = CodegenSpec(grain="run")
    first = compile_program(program, spec)
    assert compile_program(program, spec) is first
    # A different spec is a different module ...
    assert compile_program(program, CodegenSpec(grain="trace")) is not first
    # ... and clearing the cache recompiles to identical source.
    clear_codegen_cache()
    recompiled = compile_program(program, spec)
    assert recompiled is not first
    assert recompiled.source == first.source


def test_program_digest_is_content_addressed():
    program = build_program("compress")
    assert program_digest(program) == program_digest(program)
    assert program_digest(program) != program_digest(build_program("mgrid"))


# ----------------------------------------------------------------------
# Parity with the interpreter, every workload.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_trace_parity(workload):
    program = build_program(workload)
    reference = Interpreter(program)
    compiled = CompiledExecution(program)
    assert (_records(compiled.trace(limit=LIMIT))
            == _records(reference.trace(limit=LIMIT)))
    assert _state(compiled) == _state(reference)


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_run_parity(workload):
    program = build_program(workload)
    reference = Interpreter(program)
    compiled = CompiledExecution(program)
    assert compiled.run(limit=LIMIT) == reference.run(limit=LIMIT)
    assert _state(compiled) == _state(reference)


@pytest.mark.parametrize("include_ifetch", [True, False])
@pytest.mark.parametrize("workload", ["compress", "mgrid", "fpppp"])
def test_memrefs_parity(workload, include_ifetch):
    program = build_program(workload)
    reference = list(Interpreter(program).mem_refs(
        limit=LIMIT, include_ifetch=include_ifetch))
    compiled = list(CompiledExecution(program).mem_refs(
        limit=LIMIT, include_ifetch=include_ifetch))
    assert compiled == reference  # MemRef is a plain namedtuple


@pytest.mark.parametrize("limit", [0, 1, 7, None])
def test_limit_parity(limit):
    program = build_program("li")
    reference = Interpreter(program)
    compiled = CompiledExecution(program)
    assert (_records(compiled.trace(limit=limit))
            == _records(reference.trace(limit=limit)))
    assert _state(compiled) == _state(reference)
    if limit is None:
        assert compiled.halted  # ran to HALT, not to a cap


# ----------------------------------------------------------------------
# Error parity: same exception type, same message, same position.
# ----------------------------------------------------------------------
def _erroring(kind: str):
    b = ProgramBuilder(f"err-{kind}")
    scratch = b.alloc_global("scratch", 64)
    if kind == "div":
        b.li("r1", 5)
        b.div("r2", "r1", "r0")
    elif kind == "rem":
        b.li("r1", 5)
        b.rem("r2", "r1", "r0")
    elif kind == "fdiv":
        b.fdiv("f2", "f1", "f0")
    elif kind == "load":
        b.li("r1", scratch + 2)
        b.lw("r2", "r1", 0)
    else:  # misaligned store
        b.li("r1", scratch + 4)
        b.sd("f1", "r1", 0)
    b.halt()
    return b.build()


@pytest.mark.parametrize("kind", ["div", "rem", "fdiv", "load", "store"])
def test_error_parity(kind):
    program = _erroring(kind)
    with pytest.raises(ExecutionError) as reference:
        Interpreter(program).run()
    with pytest.raises(ExecutionError) as compiled:
        CompiledExecution(program).run()
    assert str(compiled.value) == str(reference.value)


def test_fell_off_program_parity():
    b = ProgramBuilder("falls-off")
    past = b.fresh_label("past")
    b.j(past)
    b.halt()  # satisfies validate(); jumped over, never reached
    b.label(past)
    b.li("r1", 1)
    program = b.build()
    with pytest.raises(ExecutionError) as reference:
        Interpreter(program).run()
    with pytest.raises(ExecutionError) as compiled:
        CompiledExecution(program).run()
    assert str(compiled.value) == str(reference.value)


# ----------------------------------------------------------------------
# Selection and fallback rules.
# ----------------------------------------------------------------------
def _jr_program():
    b = ProgramBuilder("uses-jr")
    done = b.fresh_label("done")
    b.jal(done)
    b.label(done)
    b.jr("r31")  # indirect: target depends on runtime register state
    b.halt()
    return b.build()


def test_supports_rejects_indirect_jumps():
    assert not supports(_jr_program())
    assert supports(build_program("compress"))


def test_resolve_engine_rules():
    ok = build_program("compress")
    jr = _jr_program()
    assert resolve_engine("auto", ok) == "codegen"
    assert resolve_engine("auto", jr) == "interpreter"  # silent fallback
    assert resolve_engine("interpreter", ok) == "interpreter"
    assert resolve_engine("codegen", ok) == "codegen"
    with pytest.raises(UnsupportedProgramError):
        resolve_engine("codegen", jr)  # explicit request must not fall back
    with pytest.raises(ValueError):
        resolve_engine("jit", ok)


def test_make_execution_picks_front_end():
    ok = build_program("compress")
    assert isinstance(make_execution(ok, "auto"), CompiledExecution)
    assert isinstance(make_execution(ok, "interpreter"), Interpreter)
    assert isinstance(make_execution(_jr_program(), "auto"), Interpreter)
    with pytest.raises(UnsupportedProgramError):
        CompiledExecution(_jr_program())


def test_trace_source_is_drop_in():
    program = build_program("go")
    assert (_records(make_trace_source(program, limit=200))
            == _records(Interpreter(program).trace(limit=200)))


# ----------------------------------------------------------------------
# The runner must tell the engines apart.
# ----------------------------------------------------------------------
def test_point_digest_sees_engine_choice():
    from repro.experiments.config import datascalar_config
    from repro.runner import SweepPoint
    from repro.runner.digest import point_digest

    config = datascalar_config(2)
    base = SweepPoint.make("datascalar", "compress", limit=100,
                           config=config)
    knobbed = SweepPoint.make("datascalar", "compress", limit=100,
                              config=config, engine="codegen")
    fielded = SweepPoint.make(
        "datascalar", "compress", limit=100,
        config=dataclasses.replace(config, engine="codegen"))
    digests = {point_digest(base), point_digest(knobbed),
               point_digest(fielded)}
    assert len(digests) == 3


def test_point_digest_sees_codegen_version(monkeypatch):
    from repro.experiments.config import datascalar_config
    from repro.isa import codegen
    from repro.runner import SweepPoint
    from repro.runner.digest import point_digest

    point = SweepPoint.make("datascalar", "compress", limit=100,
                            config=datascalar_config(2))
    before = point_digest(point)
    monkeypatch.setattr(codegen, "CODEGEN_VERSION",
                        CODEGEN_VERSION + "-test")
    assert point_digest(point) != before
