"""Property-based tests for the out-of-order pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.perfect import PerfectMemory
from repro.cpu.pipeline import Pipeline
from repro.isa import Interpreter, ProgramBuilder
from repro.params import CPUConfig

# Random straight-line programs mixing ALU ops and memory accesses.
ops = st.lists(
    st.tuples(
        st.sampled_from(["addi", "add", "lw", "sw", "mul"]),
        st.integers(min_value=1, max_value=12),   # register selector
        st.integers(min_value=0, max_value=31),   # word offset selector
    ),
    min_size=1,
    max_size=60,
)


def _build(op_list):
    b = ProgramBuilder()
    base = b.alloc_global("buf", 256)
    b.li("r15", base)
    for op, reg, offset in op_list:
        rd = f"r{reg}"
        if op == "addi":
            b.addi(rd, rd, 1)
        elif op == "add":
            b.add(rd, rd, "r15")
        elif op == "mul":
            b.mul(rd, rd, rd)
        elif op == "lw":
            b.lw(rd, "r15", (offset % 32) * 4)
        else:
            b.sw(rd, "r15", (offset % 32) * 4)
    b.halt()
    return b.build()


def _run(op_list, cpu=None):
    program = _build(op_list)
    pipeline = Pipeline(cpu or CPUConfig(), PerfectMemory(),
                        Interpreter(program).trace())
    stats = pipeline.run(1_000_000)
    return program, stats


@given(ops)
@settings(max_examples=80, deadline=None)
def test_pipeline_commits_every_traced_instruction(op_list):
    program, stats = _run(op_list)
    # +2: the leading li and the halt.
    assert stats.committed == len(op_list) + 2


@given(ops)
@settings(max_examples=60, deadline=None)
def test_ipc_bounded_by_machine_width(op_list):
    _, stats = _run(op_list)
    assert 0 < stats.ipc <= CPUConfig().issue_width


@given(ops)
@settings(max_examples=40, deadline=None)
def test_narrower_machine_never_faster(op_list):
    _, wide = _run(op_list)
    narrow_cpu = CPUConfig(fetch_width=1, issue_width=1, commit_width=1,
                           ruu_entries=16, lsq_entries=8)
    _, narrow = _run(op_list, cpu=narrow_cpu)
    assert narrow.cycles >= wide.cycles
    assert narrow.committed == wide.committed


@given(ops)
@settings(max_examples=40, deadline=None)
def test_load_store_counts_match_program(op_list):
    _, stats = _run(op_list)
    loads = sum(1 for op, _, _ in op_list if op == "lw")
    stores = sum(1 for op, _, _ in op_list if op == "sw")
    assert stats.loads == loads
    assert stats.stores == stores


@given(ops)
@settings(max_examples=30, deadline=None)
def test_conservative_disambiguation_commits_same_work(op_list):
    """Conservative disambiguation must never change *what* commits and
    is almost always no faster than the oracle — but not strictly:
    oldest-ready-first issue with FU contention is non-monotonic in
    operand-ready times, so delaying a load can occasionally open a
    better issue packing and finish a short program a few cycles sooner
    (a classic scheduling anomaly, not a model bug).  Allow a small
    anomaly slack; large wins would still flag a real problem."""
    _, oracle = _run(op_list)
    _, conservative = _run(
        op_list, cpu=CPUConfig(oracle_disambiguation=False))
    assert conservative.committed == oracle.committed
    assert conservative.cycles >= oracle.cycles - 8
