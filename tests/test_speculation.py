"""Tests for realistic branch prediction and speculative-broadcast
buffering (what the paper's perfect-BP assumption covers)."""

import dataclasses

import pytest

from repro.baseline.perfect import PerfectMemory
from repro.core import DataScalarSystem
from repro.cpu.pipeline import Pipeline
from repro.errors import ConfigError
from repro.experiments import datascalar_config, timing_node_config
from repro.isa import Interpreter, ProgramBuilder
from repro.params import CPUConfig
from repro.workloads import build_program


def _branchy_program(iterations=300):
    """A data-dependent branch stream (taken when the LCG bit is set)."""
    b = ProgramBuilder()
    b.li("r1", 12345)
    b.li("r2", 0)
    with b.repeat(iterations, "r9"):
        b.li("r3", 1664525)
        b.mul("r1", "r1", "r3")
        b.addi("r1", "r1", 1013904223)
        b.li("r3", 0xFFFFFFFF)
        b.and_("r1", "r1", "r3")
        b.andi("r4", "r1", 16)
        with b.if_cond("ne", "r4", "r0"):
            b.addi("r2", "r2", 1)
    b.halt()
    return b.build()


def _run(cpu_config, program=None):
    pipeline = Pipeline(cpu_config, PerfectMemory(),
                        Interpreter(program or _branchy_program()).trace())
    return pipeline.run(1_000_000)


def test_perfect_prediction_counts_no_branches():
    stats = _run(CPUConfig(branch_predictor="perfect"))
    assert stats.branches == 0
    assert stats.mispredicts == 0


def test_real_predictor_counts_and_mispredicts_on_random_branches():
    stats = _run(CPUConfig(branch_predictor="bimodal"))
    assert stats.branches > 300
    assert stats.mispredicts > 0
    assert 0.0 < stats.misprediction_rate < 1.0


def test_mispredictions_cost_cycles():
    perfect = _run(CPUConfig(branch_predictor="perfect"))
    real = _run(CPUConfig(branch_predictor="bimodal"))
    assert real.committed == perfect.committed  # same work
    assert real.cycles > perfect.cycles


def test_higher_penalty_costs_more():
    cheap = _run(CPUConfig(branch_predictor="bimodal",
                           misprediction_penalty=2))
    costly = _run(CPUConfig(branch_predictor="bimodal",
                            misprediction_penalty=20))
    assert costly.cycles > cheap.cycles


def test_predictable_loop_barely_slower_with_real_predictor():
    b = ProgramBuilder()
    b.li("r1", 0)
    with b.repeat(500, "r2"):
        b.addi("r1", "r1", 1)
    b.halt()
    program = b.build()
    perfect = _run(CPUConfig(branch_predictor="perfect"), program)
    real = _run(CPUConfig(branch_predictor="bimodal"), program)
    assert real.cycles < perfect.cycles * 1.2


def test_unknown_predictor_rejected():
    with pytest.raises(ConfigError):
        CPUConfig(branch_predictor="oracle-of-delphi")
    with pytest.raises(ConfigError):
        CPUConfig(misprediction_penalty=-1)


def test_gshare_and_static_modes_run():
    for kind in ("gshare", "static"):
        stats = _run(CPUConfig(branch_predictor=kind))
        assert stats.branches > 0


# ----------------------------------------------------------------------
# Speculative-broadcast buffering on the DataScalar system.
# ----------------------------------------------------------------------
def test_commit_time_broadcasts_are_all_late_and_slower():
    program = build_program("compress")
    node = timing_node_config()
    eager = DataScalarSystem(datascalar_config(2, node=node)).run(
        program, limit=8000)
    buffered_node = dataclasses.replace(node, commit_time_broadcasts=True)
    buffered = DataScalarSystem(datascalar_config(2, node=buffered_node)).run(
        program, limit=8000)
    assert buffered.late_broadcast_fraction == 1.0
    assert buffered.ipc <= eager.ipc
    # Protocol stays balanced either way (validated inside run()).
    assert (sum(n.broadcasts_sent for n in buffered.nodes)
            >= sum(n.broadcasts_sent for n in eager.nodes) * 0.8)


def test_real_bp_plus_buffering_compound():
    program = build_program("go")
    node = timing_node_config()
    base = DataScalarSystem(datascalar_config(2, node=node)).run(
        program, limit=8000)
    bp_cpu = dataclasses.replace(node.cpu, branch_predictor="bimodal")
    spec_node = dataclasses.replace(node, cpu=bp_cpu,
                                    commit_time_broadcasts=True)
    spec = DataScalarSystem(datascalar_config(2, node=spec_node)).run(
        program, limit=8000)
    assert spec.ipc < base.ipc
