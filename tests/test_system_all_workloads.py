"""System-level smoke: every kernel runs clean on the DataScalar machine.

Each run exercises the full stack — interpreter, pipeline, caches, DCUB,
BSHR, correspondence, bus — and the end-of-run validator inside
``DataScalarSystem.run`` raises on any protocol leak, so a pass here is
a liveness/balance proof over all fifteen memory-behaviour shapes.
"""

import pytest

from repro.core import DataScalarSystem
from repro.experiments import datascalar_config, timing_node_config
from repro.workloads import WORKLOADS, build_program

LIMIT = 3000


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_runs_clean_on_datascalar(name):
    program = build_program(name)
    config = datascalar_config(2, node=timing_node_config())
    result = DataScalarSystem(config).run(program, limit=LIMIT)
    assert result.instructions == LIMIT
    assert 0 < result.ipc <= 8
    assert result.extra["unmapped_pages"] == 0


@pytest.mark.parametrize("name", ["compress", "li", "mgrid"])
def test_workload_runs_clean_on_four_nodes(name):
    program = build_program(name)
    config = datascalar_config(4, node=timing_node_config())
    result = DataScalarSystem(config).run(program, limit=LIMIT)
    assert result.instructions == LIMIT
    assert len(result.nodes) == 4
