"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigError, MemoryError_
from repro.memory import Cache
from repro.params import CacheConfig


def _cache(size=1024, assoc=2, line=32, **kw):
    return Cache(CacheConfig(size_bytes=size, assoc=assoc, line_size=line,
                             **kw))


def test_line_addr_alignment():
    cache = _cache(line=64)
    assert cache.line_addr(0x1234) == 0x1200
    assert cache.line_addr(0x1200) == 0x1200


def test_read_miss_then_hit():
    cache = _cache()
    first = cache.commit_access(0x100, is_write=False)
    second = cache.commit_access(0x104, is_write=False)
    assert not first.hit and first.filled
    assert second.hit and not second.filled
    assert cache.stats.read_misses == 1
    assert cache.stats.read_hits == 1


def test_lookup_is_non_mutating():
    cache = _cache(size=64, assoc=1, line=32)  # 2 sets
    cache.commit_access(0x0, is_write=False)
    # Probing a conflicting line must not evict or reorder anything.
    for _ in range(10):
        assert not cache.lookup(0x40)
        assert cache.lookup(0x0)
    assert cache.stats.accesses == 1


def test_lru_replacement_order():
    cache = _cache(size=64, assoc=2, line=32)  # 1 set, 2 ways
    cache.commit_access(0x0, False)
    cache.commit_access(0x40, False)
    cache.commit_access(0x0, False)  # touch 0x0 -> LRU victim is 0x40
    result = cache.commit_access(0x80, False)
    assert result.evicted == 0x40
    assert cache.lookup(0x0)
    assert not cache.lookup(0x40)


def test_writeback_of_dirty_victim():
    cfg = CacheConfig(size_bytes=64, assoc=2, line_size=32,
                      write_policy="writeback", write_allocate=True)
    cache = Cache(cfg)
    cache.commit_access(0x0, is_write=True)  # allocate dirty
    cache.commit_access(0x40, is_write=False)
    result = cache.commit_access(0x80, is_write=False)  # evicts dirty 0x0
    assert result.writeback == 0x0
    assert cache.stats.writebacks == 1


def test_write_noallocate_miss_bypasses_cache():
    cfg = CacheConfig(size_bytes=1024, assoc=2, line_size=32,
                      write_policy="writeback", write_allocate=False)
    cache = Cache(cfg)
    result = cache.commit_access(0x100, is_write=True)
    assert not result.hit and not result.filled
    assert not cache.lookup(0x100)
    assert cache.stats.writethroughs == 1  # went around the cache


def test_write_hit_marks_dirty_under_writeback():
    cfg = CacheConfig(size_bytes=1024, assoc=2, line_size=32,
                      write_policy="writeback", write_allocate=False)
    cache = Cache(cfg)
    cache.commit_access(0x100, is_write=False)
    cache.commit_access(0x104, is_write=True)
    assert cache.line_addr(0x100) in cache.dirty_lines()


def test_writethrough_never_creates_dirty_lines():
    cfg = CacheConfig(size_bytes=1024, assoc=2, line_size=32,
                      write_policy="writethrough", write_allocate=True)
    cache = Cache(cfg)
    cache.commit_access(0x100, is_write=True)
    cache.commit_access(0x100, is_write=True)
    assert not cache.dirty_lines()
    assert cache.stats.writethroughs == 2


def test_touch_nonresident_raises():
    with pytest.raises(MemoryError_):
        _cache().touch(0x100)


def test_mark_dirty_nonresident_raises():
    with pytest.raises(MemoryError_):
        _cache().mark_dirty(0x100)


def test_insert_existing_line_ors_dirty_and_refreshes():
    cache = _cache(size=64, assoc=2, line=32)
    cache.insert(0x0)
    cache.insert(0x40)
    assert cache.insert(0x0, dirty=True) is None
    victim = cache.insert(0x80)
    assert victim == (0x40, False)
    assert 0x0 in cache.dirty_lines()


def test_invalidate_returns_dirty_state():
    cache = _cache()
    cache.insert(0x100, dirty=True)
    assert cache.invalidate(0x100) is True
    assert cache.invalidate(0x100) is False  # already gone
    assert not cache.lookup(0x100)


def test_flush_reports_dirty_lines_and_empties():
    cache = _cache()
    cache.insert(0x100, dirty=True)
    cache.insert(0x200, dirty=False)
    dirty = cache.flush()
    assert dirty == [0x100]
    assert not cache.lookup(0x100) and not cache.lookup(0x200)


def test_resident_lines_snapshot():
    cache = _cache()
    cache.insert(0x100)
    cache.insert(0x200)
    assert cache.resident_lines() == {0x100, 0x200}


def test_identical_access_sequences_leave_identical_state():
    """The correspondence property: state is a function of the sequence."""
    sequence = [(0x0, False), (0x40, True), (0x80, False), (0x0, False),
                (0xC0, True), (0x40, False)]
    a = _cache(size=128, assoc=2, line=32, write_allocate=True)
    b = _cache(size=128, assoc=2, line=32, write_allocate=True)
    for addr, is_write in sequence:
        a.commit_access(addr, is_write)
        b.commit_access(addr, is_write)
    assert a.resident_lines() == b.resident_lines()
    assert a.dirty_lines() == b.dirty_lines()


def test_config_validation():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=1000, assoc=3, line_size=32)
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=100, assoc=1, line_size=32)
    with pytest.raises(ConfigError):
        CacheConfig(write_policy="writearound")
    with pytest.raises(ConfigError):
        CacheConfig(hit_latency=0)


def test_miss_rate():
    cache = _cache()
    assert cache.stats.miss_rate() == 0.0
    cache.commit_access(0x0, False)
    cache.commit_access(0x0, False)
    assert cache.stats.miss_rate() == 0.5
