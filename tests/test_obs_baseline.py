"""The perf-regression gate: manifest vs manifest and vs BENCH files."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.baseline import (DEFAULT_TOLERANCE, MIN_PHASE_SHARE, Check,
                                compare, main, manifest_rate,
                                manifest_timing_shares)

MANIFEST = {
    "schema": "repro-run-manifest/1",
    "jobs": 2,
    "wall_seconds": 2.0,
    "points": [
        {"label": "a", "cached": False, "deduped": False,
         "wall_seconds": 0.4, "limit": 4000, "phases": {}},
        {"label": "b", "cached": False, "deduped": False,
         "wall_seconds": 0.8, "limit": 4000, "phases": {}},
        {"label": "a-alias", "cached": False, "deduped": True,
         "wall_seconds": 0.4, "limit": 4000, "phases": {}},
        {"label": "c", "cached": True, "deduped": False,
         "wall_seconds": 0.0, "limit": 4000, "phases": {}},
        {"label": "analytic", "cached": False, "deduped": False,
         "wall_seconds": 0.1, "limit": None, "phases": {}},
    ],
    "metrics": {},
}


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def test_manifest_rate_uses_executed_points_with_limits():
    # Median of 0.4/4000 and 0.8/4000; aliases, cache hits, and
    # limit-less analytic points are excluded.
    assert manifest_rate(MANIFEST) == pytest.approx(0.6 / 4000)


def test_check_ratio_and_verdict():
    ok = Check("x", baseline=1.0, measured=1.5, tolerance=2.0)
    assert ok.ok and ok.ratio == pytest.approx(1.5)
    bad = Check("x", baseline=1.0, measured=2.5, tolerance=2.0)
    assert not bad.ok
    degenerate = Check("x", baseline=0.0, measured=1.0, tolerance=2.0)
    assert degenerate.ratio == float("inf")
    assert "FAIL" in bad.describe() and "OK" in ok.describe()


def test_compare_manifest_to_itself_passes():
    checks = compare(MANIFEST, MANIFEST, tolerance=DEFAULT_TOLERANCE)
    assert checks
    assert all(check.ok for check in checks)
    assert {check.name for check in checks} == {
        "seconds_per_instruction", "per_point_wall_ratio",
        "executed_wall_seconds"}


def test_compare_detects_synthetic_slowdown():
    slowed = copy.deepcopy(MANIFEST)
    for point in slowed["points"]:
        point["wall_seconds"] *= 10
    checks = compare(slowed, MANIFEST, tolerance=DEFAULT_TOLERANCE)
    assert checks and all(not check.ok for check in checks)


def test_compare_against_bench_sweep_shape():
    bench = {"serial_seconds": 12.0, "points": 30, "limit": 16000}
    checks = compare(MANIFEST, bench, tolerance=10.0)
    assert len(checks) == 1
    assert checks[0].name == "seconds_per_instruction"
    assert checks[0].baseline == pytest.approx(12.0 / 30 / 16000)


def test_compare_against_bench_simperf_shape():
    bench = {"optimized_seconds": 0.55, "limit": 16000}
    checks = compare(MANIFEST, bench, tolerance=10.0)
    assert len(checks) == 1
    assert checks[0].baseline == pytest.approx(0.55 / 16000)


def test_compare_requires_a_manifest():
    with pytest.raises(ValueError, match="expected a run manifest"):
        compare({"schema": "nope"}, MANIFEST)


def test_cli_passes_on_fresh_manifest(tmp_path, capsys):
    manifest = _write(tmp_path, "run.json", MANIFEST)
    rc = main([manifest, "--against", manifest])
    assert rc == 0
    out = capsys.readouterr().out
    assert "all" in out and "within tolerance" in out


def test_cli_fails_on_slowed_manifest(tmp_path, capsys):
    slowed = copy.deepcopy(MANIFEST)
    for point in slowed["points"]:
        point["wall_seconds"] *= 10
    rc = main([_write(tmp_path, "slow.json", slowed),
               "--against", _write(tmp_path, "base.json", MANIFEST)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_cli_refuses_vacuous_pass(tmp_path, capsys):
    empty = {"schema": "repro-run-manifest/1", "points": []}
    rc = main([_write(tmp_path, "empty.json", empty),
               "--against", _write(tmp_path, "empty2.json", empty)])
    assert rc == 2
    assert "vacuous" in capsys.readouterr().err


def test_cli_requires_against_and_positive_tolerance(tmp_path, capsys):
    manifest = _write(tmp_path, "run.json", MANIFEST)
    assert main([manifest]) == 2
    assert main([manifest, "--against", manifest, "--tolerance", "0"]) == 2


def test_cli_bad_input_is_exit_2(tmp_path, capsys):
    missing = str(tmp_path / "missing.json")
    manifest = _write(tmp_path, "run.json", MANIFEST)
    assert main([manifest, "--against", missing]) == 2
    assert main([missing, "--against", manifest]) == 2


# ----------------------------------------------------------------------
# Timing-loop phase shares (the timing-profile CI job's gate).
# ----------------------------------------------------------------------

def _timed_manifest():
    """A manifest whose executed points carry timing_phases rows."""
    manifest = copy.deepcopy(MANIFEST)
    manifest["points"][0]["timing_phases"] = {
        "commit": 0.1, "issue": 0.5, "memory": 0.02, "<self>": 0.4}
    manifest["points"][1]["timing_phases"] = {
        "commit": 0.3, "issue": 1.1, "memory": 0.02, "<self>": 0.56}
    # The deduped alias also carries phases; it must NOT be aggregated.
    manifest["points"][2]["timing_phases"] = {"commit": 100.0}
    return manifest


def test_manifest_timing_shares_aggregates_executed_points():
    shares = manifest_timing_shares(_timed_manifest())
    # Totals over the two executed points: commit 0.4, issue 1.6,
    # memory 0.04, <self> 0.96 — sum 3.0.
    assert shares["commit"] == pytest.approx(0.4 / 3.0)
    assert shares["issue"] == pytest.approx(1.6 / 3.0)
    assert shares["<self>"] == pytest.approx(0.96 / 3.0)
    assert sum(shares.values()) == pytest.approx(1.0)


def test_manifest_timing_shares_empty_without_phases():
    assert manifest_timing_shares(MANIFEST) == {}


def test_bench_timing_phases_gate_shares():
    bench = {"optimized_seconds": 0.55, "limit": 16000,
             "timing_phases": {"commit": 0.4, "issue": 1.6,
                               "memory": 0.04, "<self>": 0.96}}
    checks = compare(_timed_manifest(), bench, tolerance=2.0)
    by_name = {check.name: check for check in checks}
    # memory's baseline share (0.04/3 ~ 1.3%) is below MIN_PHASE_SHARE
    # and must be skipped as clock-resolution noise.
    assert 0.04 / 3.0 < MIN_PHASE_SHARE
    assert "timing_phase_share[memory]" not in by_name
    for phase in ("commit", "issue", "<self>"):
        check = by_name[f"timing_phase_share[{phase}]"]
        assert check.ok and check.ratio == pytest.approx(1.0)


def test_bench_share_tolerance_is_separate_from_wall_tolerance():
    bench = {"optimized_seconds": 0.55, "limit": 16000,
             "timing_phases": {"commit": 0.4, "issue": 1.6, "<self>": 0.96}}
    blowup = _timed_manifest()
    for point in blowup["points"][:2]:
        point["timing_phases"]["commit"] *= 100
    # The wide cross-machine wall tolerance alone passes the blowup
    # (share ratios are bounded by 1/base_share: 0.94/0.13 ~ 7x < 8x)...
    loose = compare(blowup, bench, tolerance=8.0)
    assert loose and all(check.ok for check in loose)
    # ...the dedicated share tolerance must catch it while the wall
    # check stays at 8x.
    checks = compare(blowup, bench, tolerance=8.0, share_tolerance=2.0)
    by_name = {check.name: check for check in checks}
    assert by_name["seconds_per_instruction"].tolerance == 8.0
    commit = by_name["timing_phase_share[commit]"]
    assert commit.tolerance == 2.0
    assert not commit.ok


def test_cli_share_tolerance_flag(tmp_path, capsys):
    bench = _write(tmp_path, "bench.json", {
        "optimized_seconds": 0.55, "limit": 16000,
        "timing_phases": {"commit": 0.4, "issue": 1.6, "<self>": 0.96}})
    good = _write(tmp_path, "good.json", _timed_manifest())
    assert main([good, "--against", bench,
                 "--tolerance", "8", "--share-tolerance", "2"]) == 0
    blowup = _timed_manifest()
    for point in blowup["points"][:2]:
        point["timing_phases"]["commit"] *= 100
    bad = _write(tmp_path, "bad.json", blowup)
    assert main([bad, "--against", bench,
                 "--tolerance", "8", "--share-tolerance", "2"]) == 1
    assert "timing_phase_share[commit]" in capsys.readouterr().out
    assert main([good, "--against", bench,
                 "--share-tolerance", "0"]) == 2
