"""The perf-regression gate: manifest vs manifest and vs BENCH files."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.baseline import (DEFAULT_TOLERANCE, Check, compare, main,
                                manifest_rate)

MANIFEST = {
    "schema": "repro-run-manifest/1",
    "jobs": 2,
    "wall_seconds": 2.0,
    "points": [
        {"label": "a", "cached": False, "deduped": False,
         "wall_seconds": 0.4, "limit": 4000, "phases": {}},
        {"label": "b", "cached": False, "deduped": False,
         "wall_seconds": 0.8, "limit": 4000, "phases": {}},
        {"label": "a-alias", "cached": False, "deduped": True,
         "wall_seconds": 0.4, "limit": 4000, "phases": {}},
        {"label": "c", "cached": True, "deduped": False,
         "wall_seconds": 0.0, "limit": 4000, "phases": {}},
        {"label": "analytic", "cached": False, "deduped": False,
         "wall_seconds": 0.1, "limit": None, "phases": {}},
    ],
    "metrics": {},
}


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def test_manifest_rate_uses_executed_points_with_limits():
    # Median of 0.4/4000 and 0.8/4000; aliases, cache hits, and
    # limit-less analytic points are excluded.
    assert manifest_rate(MANIFEST) == pytest.approx(0.6 / 4000)


def test_check_ratio_and_verdict():
    ok = Check("x", baseline=1.0, measured=1.5, tolerance=2.0)
    assert ok.ok and ok.ratio == pytest.approx(1.5)
    bad = Check("x", baseline=1.0, measured=2.5, tolerance=2.0)
    assert not bad.ok
    degenerate = Check("x", baseline=0.0, measured=1.0, tolerance=2.0)
    assert degenerate.ratio == float("inf")
    assert "FAIL" in bad.describe() and "OK" in ok.describe()


def test_compare_manifest_to_itself_passes():
    checks = compare(MANIFEST, MANIFEST, tolerance=DEFAULT_TOLERANCE)
    assert checks
    assert all(check.ok for check in checks)
    assert {check.name for check in checks} == {
        "seconds_per_instruction", "per_point_wall_ratio",
        "executed_wall_seconds"}


def test_compare_detects_synthetic_slowdown():
    slowed = copy.deepcopy(MANIFEST)
    for point in slowed["points"]:
        point["wall_seconds"] *= 10
    checks = compare(slowed, MANIFEST, tolerance=DEFAULT_TOLERANCE)
    assert checks and all(not check.ok for check in checks)


def test_compare_against_bench_sweep_shape():
    bench = {"serial_seconds": 12.0, "points": 30, "limit": 16000}
    checks = compare(MANIFEST, bench, tolerance=10.0)
    assert len(checks) == 1
    assert checks[0].name == "seconds_per_instruction"
    assert checks[0].baseline == pytest.approx(12.0 / 30 / 16000)


def test_compare_against_bench_simperf_shape():
    bench = {"optimized_seconds": 0.55, "limit": 16000}
    checks = compare(MANIFEST, bench, tolerance=10.0)
    assert len(checks) == 1
    assert checks[0].baseline == pytest.approx(0.55 / 16000)


def test_compare_requires_a_manifest():
    with pytest.raises(ValueError, match="expected a run manifest"):
        compare({"schema": "nope"}, MANIFEST)


def test_cli_passes_on_fresh_manifest(tmp_path, capsys):
    manifest = _write(tmp_path, "run.json", MANIFEST)
    rc = main([manifest, "--against", manifest])
    assert rc == 0
    out = capsys.readouterr().out
    assert "all" in out and "within tolerance" in out


def test_cli_fails_on_slowed_manifest(tmp_path, capsys):
    slowed = copy.deepcopy(MANIFEST)
    for point in slowed["points"]:
        point["wall_seconds"] *= 10
    rc = main([_write(tmp_path, "slow.json", slowed),
               "--against", _write(tmp_path, "base.json", MANIFEST)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_cli_refuses_vacuous_pass(tmp_path, capsys):
    empty = {"schema": "repro-run-manifest/1", "points": []}
    rc = main([_write(tmp_path, "empty.json", empty),
               "--against", _write(tmp_path, "empty2.json", empty)])
    assert rc == 2
    assert "vacuous" in capsys.readouterr().err


def test_cli_requires_against_and_positive_tolerance(tmp_path, capsys):
    manifest = _write(tmp_path, "run.json", MANIFEST)
    assert main([manifest]) == 2
    assert main([manifest, "--against", manifest, "--tolerance", "0"]) == 2


def test_cli_bad_input_is_exit_2(tmp_path, capsys):
    missing = str(tmp_path / "missing.json")
    manifest = _write(tmp_path, "run.json", MANIFEST)
    assert main([manifest, "--against", missing]) == 2
    assert main([missing, "--against", manifest]) == 2
