"""Experiment drivers on the sweep runner: parity, CLI, memoization."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main
from repro.experiments.figure7 import run_figure7
from repro.experiments.resilience import run_resilience
from repro.experiments.table1 import run_table1
from repro.runner import ResultCache, SweepRunner, result_fingerprint

LIMIT = 1500


def _figure7_rows(runner):
    return run_figure7(benchmarks=["compress"], limit=LIMIT, runner=runner)


def test_figure7_parity_serial_parallel_cached(tmp_path):
    serial = _figure7_rows(SweepRunner(jobs=1))
    parallel = _figure7_rows(SweepRunner(jobs=2))
    cache = ResultCache(tmp_path, code_version="v")
    _figure7_rows(SweepRunner(jobs=1, cache=cache))  # populate
    warm_runner = SweepRunner(jobs=1, cache=cache)
    cached = _figure7_rows(warm_runner)
    assert warm_runner.registry.counter("runner.points.executed").value == 0
    for a, b, c in zip(serial, parallel, cached):
        assert result_fingerprint(a) == result_fingerprint(b)
        assert result_fingerprint(a) == result_fingerprint(c)


def test_table1_parity_parallel(tmp_path):
    names = ["compress", "go"]
    serial = run_table1(benchmarks=names, limit=LIMIT,
                        runner=SweepRunner(jobs=1))
    parallel = run_table1(benchmarks=names, limit=LIMIT,
                          runner=SweepRunner(jobs=2))
    assert [result_fingerprint(r) for r in serial] == \
        [result_fingerprint(r) for r in parallel]


def test_resilience_seeds_address_distinct_entries(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    runner = SweepRunner(jobs=1, cache=cache)
    run_resilience(limit=LIMIT, drop_probs=(0.0, 1e-2), seeds=(11,),
                   runner=runner)
    run_resilience(limit=LIMIT, drop_probs=(0.0, 1e-2), seeds=(12,),
                   runner=runner)
    # The fault-free anchor is shared; the seeded cell is not.
    assert runner.registry.counter("runner.cache.hit").value == 1
    assert runner.registry.counter("runner.points.executed").value == 3


def test_cli_warm_rerun_hits_everything(tmp_path, capsys):
    cache_dir = str(tmp_path / "cli-cache")
    args = ["table3", "--limit", str(LIMIT), "--jobs", "1",
            "--cache-dir", cache_dir]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "cache_hit_rate=0%" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "cache_hit_rate=100%" in warm
    assert "executed=0" in warm
    # The rendered table is identical either way.
    assert cold.split("[runner]")[0] == warm.split("[runner]")[0]


def test_cli_no_cache_disables_caching(tmp_path, capsys):
    args = ["figure1", "--no-cache"]
    assert main(args) == 0
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "cache_hits=0 cache_misses=0" in out


def test_cli_jobs_flag_parallel(tmp_path, capsys):
    assert main(["figure3", "--limit", str(LIMIT), "--jobs", "2",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "jobs=2" in out and "Figure 3" in out


def test_cli_all_continues_past_failures(monkeypatch, capsys):
    import repro.experiments.__main__ as cli

    def boom(limit, engine):
        raise RuntimeError("injected failure")

    monkeypatch.setitem(cli.EXPERIMENTS, "figure3",
                        (boom, lambda result: "", False))
    exit_code = main(["all", "--limit", str(LIMIT), "--no-cache"])
    captured = capsys.readouterr()
    assert exit_code == 1
    # Experiments after the broken one still ran and printed.
    assert "Figure 7" in captured.out and "Table 1" in captured.out
    assert "[failed] figure3: injected failure" in captured.err
    assert "1 of " in captured.err


def test_cli_single_experiment_failure_still_raises(monkeypatch):
    import repro.experiments.__main__ as cli

    def boom(limit, engine):
        raise RuntimeError("injected failure")

    monkeypatch.setitem(cli.EXPERIMENTS, "figure3",
                        (boom, lambda result: "", False))
    with pytest.raises(RuntimeError, match="injected failure"):
        main(["figure3", "--limit", str(LIMIT), "--no-cache"])


def test_program_builds_are_memoized():
    from repro.workloads import build_program, get_workload
    from repro.workloads.common import _PROGRAM_CACHE, clear_program_cache

    clear_program_cache()
    try:
        first = build_program("go", 1)
        assert build_program("go", 1) is first
        assert get_workload("go").build(1) is first
        assert ("go", 1) in _PROGRAM_CACHE
        assert build_program("go", 2) is not first
    finally:
        clear_program_cache()


def test_memoized_programs_simulate_identically():
    from repro.workloads.common import clear_program_cache

    clear_program_cache()
    cold = _figure7_rows(SweepRunner(jobs=1))
    warm = _figure7_rows(SweepRunner(jobs=1))  # memoized program path
    assert [result_fingerprint(r) for r in cold] == \
        [result_fingerprint(r) for r in warm]
