"""Tests for the SPSD lockstep divergence checker."""

import pytest

from repro.core.system import DataScalarSystem
from repro.errors import ProtocolError
from repro.experiments.config import datascalar_config
from repro.obs import Divergence, DivergenceError, EventKind, EventTracer, \
    TraceEvent, assert_lockstep, check_lockstep
from repro.workloads import build_program


def _commit(node, cycle, seq, op="alu"):
    return TraceEvent(EventKind.COMMIT, cycle, node, {"seq": seq, "op": op})


def _cache(node, cycle, line, evicted=None):
    return TraceEvent(EventKind.CACHE_COMMIT, cycle, node,
                      {"line": line, "store": False, "hit": False,
                       "filled": True, "evicted": evicted})


def test_lockstep_ok_for_identical_streams():
    events = []
    for node in (0, 1):
        events += [_commit(node, 10 + node, 1), _commit(node, 12 + node, 2)]
    assert check_lockstep(events) is None
    assert_lockstep(events)  # must not raise


def test_single_node_stream_is_trivially_lockstep():
    assert check_lockstep([_commit(0, 1, 1), _commit(0, 2, 2)]) is None
    assert check_lockstep([]) is None


def test_commit_divergence_pinpoints_node_and_cycle():
    events = [_commit(0, 10, 1), _commit(0, 12, 2),
              _commit(1, 11, 1), _commit(1, 13, 2, op="load")]
    divergence = check_lockstep(events)
    assert divergence is not None
    assert divergence.invariant == "commit"
    assert divergence.index == 1
    assert divergence.node == 1
    assert divergence.cycle == 13
    assert divergence.expected == (2, "alu")
    assert divergence.got == (2, "load")
    text = divergence.describe()
    assert "node 1" in text and "cycle 13" in text


def test_cache_decision_divergence_detected():
    """A mutated replacement decision (different victim) is caught."""
    events = [_cache(0, 20, 0x100, evicted=0x40),
              _cache(1, 21, 0x100, evicted=0x80)]
    divergence = check_lockstep(events)
    assert divergence is not None
    assert divergence.invariant == "cache-decision"
    assert divergence.node == 1 and divergence.cycle == 21


def test_missing_tail_is_a_divergence():
    events = [_commit(0, 10, 1), _commit(0, 12, 2), _commit(1, 11, 1)]
    divergence = check_lockstep(events)
    assert divergence is not None
    assert divergence.index == 1
    assert divergence.got is None
    assert "ended after 1 events" in divergence.describe()


def test_extra_tail_is_a_divergence():
    events = [_commit(0, 10, 1), _commit(1, 11, 1), _commit(1, 13, 2)]
    divergence = check_lockstep(events)
    assert divergence is not None
    assert divergence.expected is None
    assert "extra event" in divergence.describe()


def test_earliest_cycle_wins_across_invariants():
    events = [
        _commit(0, 50, 1), _commit(1, 51, 1, op="load"),  # commit @51
        _cache(0, 20, 0x100, evicted=0x40),
        _cache(1, 21, 0x100, evicted=0x80),               # cache @21
    ]
    divergence = check_lockstep(events)
    assert divergence.invariant == "cache-decision"


def test_assert_lockstep_raises_protocol_error():
    events = [_commit(0, 10, 1), _commit(1, 11, 1, op="load")]
    with pytest.raises(DivergenceError) as excinfo:
        assert_lockstep(events)
    assert isinstance(excinfo.value, ProtocolError)
    assert "node 1" in str(excinfo.value)


def test_divergence_dataclass_fields():
    divergence = Divergence(invariant="commit", index=0, node=1, cycle=5,
                            reference_node=0, expected=(1, "alu"),
                            got=(1, "load"))
    assert "commit event #0" in divergence.describe()


def test_real_run_is_lockstep_and_tampering_is_caught():
    """A real two-node run passes; mutating one node's recorded
    replacement decision is caught at that exact event."""
    program = build_program("compress")
    tracer = EventTracer()
    DataScalarSystem(datascalar_config(2)).run(program, limit=2000,
                                               tracer=tracer)
    assert check_lockstep(tracer.events) is None

    tampered = [
        TraceEvent(event.kind, event.cycle, event.node, dict(event.args))
        for event in tracer.events
    ]
    victims = [event for event in tampered
               if event.kind is EventKind.CACHE_COMMIT and event.node == 1]
    assert victims, "run produced no node-1 cache commits"
    victim = victims[len(victims) // 2]
    victim.args["evicted"] = 0xdead000  # a different replacement victim
    divergence = check_lockstep(tampered)
    assert divergence is not None
    assert divergence.invariant == "cache-decision"
    assert divergence.node == 1
    assert divergence.cycle == victim.cycle
    assert divergence.got[4] == 0xdead000
