"""Unit tests for the Broadcast Status Holding Registers."""

import pytest

from repro.core.bshr import BSHRFile
from repro.cpu.interface import LoadHandle
from repro.errors import BroadcastLostError, ProtocolError
from repro.params import BSHRConfig


def _bshr(entries=8, latency=2):
    return BSHRFile(BSHRConfig(entries=entries, access_latency=latency))


def _handle(now=0):
    return LoadHandle(0x100, 4, now)


def test_wait_then_arrival_completes_load():
    bshr = _bshr()
    handle = _handle(now=5)
    bshr.load(5, 0x100, handle)
    assert handle.ready is None
    bshr.arrival(20, 0x100)
    assert handle.ready == 22  # arrival + access latency
    assert bshr.stats.waits == 1
    assert not handle.found_in_bshr


def test_arrival_before_load_is_effective_onchip_hit():
    bshr = _bshr()
    bshr.arrival(10, 0x100)
    handle = _handle(now=30)
    bshr.load(30, 0x100, handle)
    assert handle.found_in_bshr
    assert handle.ready == 32  # now + access latency
    assert bshr.stats.found_in_bshr == 1


def test_arrival_with_future_timestamp_not_counted_as_found():
    bshr = _bshr()
    bshr.arrival(100, 0x100)  # in flight, lands at cycle 100
    handle = _handle(now=50)
    bshr.load(50, 0x100, handle)
    assert not handle.found_in_bshr
    assert handle.ready == 102


def test_earliest_matching_entry_freed_first():
    bshr = _bshr()
    first = _handle(now=0)
    second = _handle(now=1)
    bshr.load(0, 0x100, first)
    bshr.load(1, 0x100, second)
    bshr.arrival(10, 0x100)
    assert first.ready is not None
    assert second.ready is None
    bshr.arrival(20, 0x100)
    assert second.ready is not None


def test_arrivals_buffered_fifo_per_line():
    bshr = _bshr()
    bshr.arrival(10, 0x100)
    bshr.arrival(20, 0x100)
    a = _handle(now=30)
    b = _handle(now=30)
    bshr.load(30, 0x100, a)
    bshr.load(30, 0x100, b)
    assert a.ready == 32  # earliest arrival consumed first
    assert b.ready == 32


def test_different_lines_do_not_match():
    bshr = _bshr()
    handle = _handle()
    bshr.load(0, 0x100, handle)
    bshr.arrival(10, 0x200)
    assert handle.ready is None
    assert bshr.occupancy() == 2


def test_scheduled_discard_consumes_future_arrival():
    bshr = _bshr()
    bshr.schedule_discard(0x100)
    bshr.arrival(10, 0x100)
    assert bshr.stats.squashes == 1
    assert bshr.occupancy() == 0
    # A later load must not see the squashed arrival.
    handle = _handle(now=20)
    bshr.load(20, 0x100, handle)
    assert handle.ready is None


def test_scheduled_discard_consumes_buffered_arrival():
    bshr = _bshr()
    bshr.arrival(10, 0x100)
    bshr.schedule_discard(0x100)
    assert bshr.stats.squashes == 1
    assert bshr.occupancy() == 0


def test_discards_stack_per_line():
    bshr = _bshr()
    bshr.schedule_discard(0x100)
    bshr.schedule_discard(0x100)
    bshr.arrival(10, 0x100)
    bshr.arrival(11, 0x100)
    bshr.arrival(12, 0x100)
    assert bshr.stats.squashes == 2
    assert bshr.occupancy() == 1  # third arrival buffered normally


def test_waiting_load_has_priority_over_buffering():
    bshr = _bshr()
    handle = _handle()
    bshr.load(0, 0x100, handle)
    bshr.arrival(10, 0x100)
    assert bshr.occupancy() == 0


def test_high_water_and_overflow_tracking():
    bshr = _bshr(entries=2)
    for i in range(3):
        bshr.load(0, 0x100 + 0x40 * i, _handle())
    assert bshr.stats.high_water == 3
    assert bshr.stats.overflows == 1


def test_assert_drained_raises_on_stranded_wait():
    bshr = _bshr()
    bshr.load(0, 0x100, _handle())
    with pytest.raises(ProtocolError):
        bshr.assert_drained()


def test_assert_drained_ignores_buffered_arrivals():
    bshr = _bshr()
    bshr.arrival(10, 0x100)
    bshr.assert_drained()  # arrivals without waiters are not a deadlock


def test_overflow_accounting_past_capacity():
    """Drive occupancy well past capacity with a mix of waiting loads and
    buffered arrivals: every over-capacity insert counts one overflow,
    ``high_water`` tracks the peak, and overflow never stalls or drops —
    all waiters still complete."""
    bshr = _bshr(entries=4)
    handles = [_handle() for _ in range(6)]
    for i, handle in enumerate(handles):
        bshr.load(0, 0x1000 + 0x40 * i, handle)      # occupancy 1..6
    for i in range(4):
        bshr.arrival(10, 0x2000 + 0x40 * i)           # occupancy 7..10
    assert bshr.occupancy() == 10
    assert bshr.stats.high_water == 10
    assert bshr.stats.overflows == 6  # inserts 5..10 each exceeded capacity
    for i, handle in enumerate(handles):
        bshr.arrival(20, 0x1000 + 0x40 * i)
        assert handle.ready is not None
    assert bshr.stats.overflows == 6  # draining never counts
    bshr.assert_drained()


# ----------------------------------------------------------------------
# Fault-mode wait deadlines.
# ----------------------------------------------------------------------
def test_timeout_unarmed_by_default():
    bshr = _bshr()
    bshr.load(0, 0x100, _handle())
    assert bshr.next_deadline() is None
    bshr.check_timeouts(10**9)  # never fires when unarmed


def test_armed_timeout_raises_after_deadline():
    bshr = _bshr()
    bshr.arm_timeout(100)
    bshr.load(5, 0x100, _handle(now=5))
    assert bshr.next_deadline() == 105
    bshr.check_timeouts(104)  # one cycle early: fine
    with pytest.raises(BroadcastLostError) as excinfo:
        bshr.check_timeouts(105)
    assert "0x100" in str(excinfo.value)


def test_arrival_disarms_wait_deadline():
    bshr = _bshr()
    bshr.arm_timeout(100)
    handle = _handle(now=0)
    bshr.load(0, 0x100, handle)
    bshr.arrival(50, 0x100)
    assert handle.ready is not None
    assert bshr.next_deadline() is None
    bshr.check_timeouts(10**6)  # satisfied wait never trips


def test_timeout_tracks_earliest_waiter():
    bshr = _bshr()
    bshr.arm_timeout(100)
    bshr.load(0, 0x100, _handle(now=0))
    bshr.load(40, 0x140, _handle(now=40))
    assert bshr.next_deadline() == 100
    bshr.arrival(60, 0x100)  # earliest waiter satisfied
    assert bshr.next_deadline() == 140


def test_arm_timeout_rejects_nonpositive_deadline():
    with pytest.raises(ProtocolError):
        _bshr().arm_timeout(0)
