"""Unit tests for the ProgramBuilder DSL."""

import pytest

from repro.errors import AssemblyError
from repro.isa import Opcode, ProgramBuilder
from repro.isa.interpreter import Interpreter
from repro.memory.address import GLOBAL_BASE, HEAP_BASE


def _run(builder):
    interp = Interpreter(builder.build())
    interp.run()
    return interp


def test_alloc_global_returns_distinct_aligned_addresses():
    b = ProgramBuilder()
    a1 = b.alloc_global("a", 12)
    a2 = b.alloc_global("b", 4)
    assert a1 >= GLOBAL_BASE
    assert a2 >= a1 + 12
    assert a1 % 8 == 0 and a2 % 8 == 0


def test_alloc_heap_lives_in_heap_segment():
    b = ProgramBuilder()
    addr = b.alloc_heap("h", 64)
    assert addr >= HEAP_BASE


def test_duplicate_allocation_name_rejected():
    b = ProgramBuilder()
    b.alloc_global("x", 4)
    with pytest.raises(AssemblyError):
        b.alloc_global("x", 4)


def test_address_of_unknown_name_rejected():
    with pytest.raises(AssemblyError):
        ProgramBuilder().address_of("nope")


def test_alloc_global_words_with_init():
    b = ProgramBuilder()
    base = b.alloc_global_words("arr", 4, init=[10, 20, 30, 40])
    b.li("r1", base)
    b.lw("r2", "r1", 8)
    b.halt()
    interp = _run(b)
    assert interp.registers[2] == 30


def test_initializer_too_long_rejected():
    b = ProgramBuilder()
    with pytest.raises(AssemblyError):
        b.alloc_global_words("arr", 2, init=[1, 2, 3])


def test_repeat_loop_runs_exact_count():
    b = ProgramBuilder()
    b.li("r1", 0)
    with b.repeat(7, "r2"):
        b.addi("r1", "r1", 1)
    b.halt()
    assert _run(b).registers[1] == 7


def test_while_cond_loop():
    b = ProgramBuilder()
    b.li("r1", 0)
    b.li("r2", 5)
    with b.while_cond("lt", "r1", "r2"):
        b.addi("r1", "r1", 1)
    b.halt()
    assert _run(b).registers[1] == 5


def test_while_cond_zero_iterations():
    b = ProgramBuilder()
    b.li("r1", 9)
    b.li("r2", 3)
    b.li("r3", 0)
    with b.while_cond("lt", "r1", "r2"):
        b.addi("r3", "r3", 1)
    b.halt()
    assert _run(b).registers[3] == 0


def test_if_cond_taken_and_not_taken():
    b = ProgramBuilder()
    b.li("r1", 1)
    b.li("r2", 2)
    b.li("r3", 0)
    b.li("r4", 0)
    with b.if_cond("lt", "r1", "r2"):
        b.li("r3", 111)
    with b.if_cond("gt", "r1", "r2"):
        b.li("r4", 222)
    b.halt()
    interp = _run(b)
    assert interp.registers[3] == 111
    assert interp.registers[4] == 0


def test_call_and_ret():
    b = ProgramBuilder()
    b.li("r1", 5)
    b.call("double")
    b.halt()
    b.label("double")
    b.add("r1", "r1", "r1")
    b.ret()
    assert _run(b).registers[1] == 10


def test_duplicate_label_rejected():
    b = ProgramBuilder()
    b.label("x")
    with pytest.raises(AssemblyError):
        b.label("x")


def test_undefined_branch_target_rejected_at_build():
    b = ProgramBuilder()
    b.beq("r1", "r2", "missing")
    b.halt()
    with pytest.raises(AssemblyError):
        b.build()


def test_program_without_halt_rejected():
    b = ProgramBuilder()
    b.nop()
    with pytest.raises(AssemblyError):
        b.build()


def test_empty_program_rejected():
    with pytest.raises(AssemblyError):
        ProgramBuilder().build()


def test_unknown_loop_condition_rejected():
    b = ProgramBuilder()
    with pytest.raises(AssemblyError):
        with b.while_cond("spaceship", "r1", "r2"):
            pass


def test_fresh_labels_are_unique():
    b = ProgramBuilder()
    labels = {b.fresh_label() for _ in range(100)}
    assert len(labels) == 100


def test_build_emits_expected_opcodes():
    b = ProgramBuilder()
    b.li("r1", 1)
    b.add("r2", "r1", "r1")
    b.halt()
    program = b.build()
    assert [i.op for i in program.instructions] == [
        Opcode.LI,
        Opcode.ADD,
        Opcode.HALT,
    ]
