"""Tests for the L2-organized traditional system (paper Section 4.3's
dismissed alternative)."""

import pytest

from repro.baseline import L2System, TraditionalSystem
from repro.baseline.l2 import L2Memory
from repro.errors import ProtocolError
from repro.experiments import timing_node_config, traditional_config
from repro.interconnect import Bus, MessageKind
from repro.isa import ProgramBuilder
from repro.params import CacheConfig

L2_CONFIG = CacheConfig(size_bytes=8 * 1024, assoc=4, line_size=32,
                        write_policy="writeback", write_allocate=True)


def _memory():
    config = traditional_config(2, node=timing_node_config(
        dcache_bytes=1024, icache_bytes=1024))
    bus = Bus(config.bus)
    return L2Memory(config, L2_CONFIG, bus), bus


def test_cold_miss_goes_offchip():
    memory, bus = _memory()
    handle = memory.load_issue(0, 0x10000100, 4)
    assert handle.ready is not None
    assert memory.l2_misses == 1
    assert memory.requests == 1
    assert bus.stats.by_kind[MessageKind.REQUEST] == 1


def test_l1_evicted_line_hits_l2():
    memory, _ = _memory()
    addr = 0x10000100
    handle = memory.load_issue(0, addr, 4)
    memory.commit_mem(50, addr, 4, is_store=False, handle=handle)
    # Evict from the 1KB L1 with a conflicting line.
    conflict = addr + 1024
    handle2 = memory.load_issue(60, conflict, 4)
    memory.commit_mem(120, conflict, 4, is_store=False, handle=handle2)
    before = memory.requests
    handle3 = memory.load_issue(130, addr, 4)
    assert memory.l2_hits == 1
    assert memory.requests == before  # served on-chip
    # L2 hit is far cheaper than the off-chip round trip.
    assert handle3.ready - 130 < handle.ready - 0


def test_l2_hit_rate_property():
    memory, _ = _memory()
    memory.l2_hits = 3
    memory.l2_misses = 1
    result_rate = memory.l2_hits / (memory.l2_hits + memory.l2_misses)
    assert result_rate == 0.75


def test_dirty_l1_eviction_lands_in_l2():
    memory, bus = _memory()
    addr = 0x10000100
    handle = memory.load_issue(0, addr, 4)
    memory.commit_mem(50, addr, 4, is_store=False, handle=handle)
    memory.commit_mem(60, addr, 4, is_store=True, handle=None)  # dirty it
    conflict = addr + 1024
    handle2 = memory.load_issue(70, conflict, 4)
    memory.commit_mem(130, conflict, 4, is_store=False, handle=handle2)
    # The dirty line went to the L2, not over the bus.
    assert bus.stats.by_kind[MessageKind.WRITEBACK] == 0
    memory.load_issue(140, addr, 4)
    assert memory.l2_hits == 1


def test_validate_catches_leaks():
    memory, _ = _memory()
    memory.load_issue(0, 0x10000100, 4)
    with pytest.raises(ProtocolError):
        memory.validate_final_state()


def test_l2_system_end_to_end():
    b = ProgramBuilder()
    arr = b.alloc_global("arr", 8192)
    with b.repeat(2, "r9"):  # two passes: the second enjoys L2 hits
        b.li("r1", arr)
        with b.repeat(2048, "r3"):
            b.lw("r4", "r1", 0)
            b.addi("r1", "r1", 4)
    b.halt()
    system = L2System(traditional_config(
        2, node=timing_node_config(dcache_bytes=1024)), l2_config=L2_CONFIG)
    result = system.run(b.build())
    assert result.instructions > 0
    assert result.l2_hits > 0
    assert 0.0 < result.l2_hit_rate < 1.0
    assert result.ipc > 0


def test_l2_beats_plain_traditional_on_rereuse():
    """Where the working set fits the L2 but not the on-chip fraction's
    luck, the dismissed alternative *can* win — the ablation's point."""
    b = ProgramBuilder()
    arr = b.alloc_global("arr", 6144)  # 1.5 pages
    with b.repeat(6, "r9"):
        b.li("r1", arr)
        with b.repeat(1536, "r3"):
            b.lw("r4", "r1", 0)
            b.addi("r1", "r1", 4)
    b.halt()
    program = b.build()
    node = timing_node_config(dcache_bytes=1024)
    config = traditional_config(4, node=node)
    plain = TraditionalSystem(config).run(program)
    l2 = L2System(config, l2_config=L2_CONFIG).run(program)
    assert l2.ipc > plain.ipc
