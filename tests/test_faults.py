"""Unreliable-broadcast resilience: fault injection and ESP recovery.

The hard invariants under test (ISSUE 3):

* faults *disabled* — config absent or a zero-probability
  ``FaultConfig`` — is bit-identical to the perfect transport, with
  fast-forward on and off;
* faults *enabled* either completes with the identical architectural
  results (committed work) plus visible recovery accounting, or raises a
  typed :class:`~repro.errors.ReproError` subclass — never silently
  wrong, never hung;
* the same seed reproduces the identical fault schedule and result.
"""

import dataclasses

import pytest

from repro.core import DataScalarSystem
from repro.errors import (
    BroadcastLostError,
    ConfigError,
    CorruptionError,
    FaultError,
    ProtocolError,
    RecoveryExhaustedError,
    SimulationError,
)
from repro.experiments.config import datascalar_config
from repro.faults import FaultPlan, FaultyMedium
from repro.params import FaultConfig
from repro.workloads import build_program

LIMIT = 2_500


def _config(num_nodes=4, interconnect="bus", faults=None,
            fast_forward=True):
    return dataclasses.replace(
        datascalar_config(num_nodes, faults=faults),
        interconnect=interconnect, fast_forward=fast_forward)


def _run(config, workload="compress"):
    return DataScalarSystem(config).run(build_program(workload),
                                        limit=LIMIT)


def _snapshot(result):
    """Every externally-visible number (timing included)."""
    nodes = []
    for node in result.nodes:
        stats = node.pipeline
        fields = dataclasses.asdict(node)
        fields["pipeline"] = {slot: getattr(stats, slot)
                              for slot in stats.__slots__}
        nodes.append(fields)
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "bus_transactions": result.bus_transactions,
        "bus_payload_bytes": result.bus_payload_bytes,
        "bus_utilization": result.bus_utilization,
        "nodes": nodes,
    }


def _architecture(result):
    """The timing-independent committed work a faulty run must match."""
    return (result.instructions,
            tuple((n.pipeline.committed, n.pipeline.loads,
                   n.pipeline.stores, n.dropped_stores)
                  for n in result.nodes))


# ----------------------------------------------------------------------
# Faults disabled => bit-identical.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fast_forward", [True, False])
@pytest.mark.parametrize("interconnect", ["bus", "ring"])
def test_zero_probability_wrapper_is_bit_identical(interconnect,
                                                   fast_forward):
    """A wrapped-but-quiet fault layer may not change one number."""
    plain = _run(_config(interconnect=interconnect,
                         fast_forward=fast_forward))
    quiet = FaultConfig(seed=3)
    assert not quiet.injects_anything
    wrapped = _run(_config(interconnect=interconnect, faults=quiet,
                           fast_forward=fast_forward))
    assert _snapshot(wrapped) == _snapshot(plain)
    faults = wrapped.extra["faults"]
    assert faults["seed"] == 3
    assert faults["injected"]["injected"] == 0
    assert faults["recovery"]["recovered"] == 0


# ----------------------------------------------------------------------
# Faults enabled => identical architectural results, visible recovery.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 7, 42])
def test_recovery_preserves_architectural_results(seed):
    baseline = _run(_config())
    faults = FaultConfig(seed=seed, receiver_drop_prob=1e-2,
                         corrupt_prob=5e-3, jitter_prob=2e-2,
                         stall_prob=5e-3)
    faulty = _run(_config(faults=faults))
    assert _architecture(faulty) == _architecture(baseline)
    snap = faulty.extra["faults"]
    injected = snap["injected"]["injected"]
    assert injected > 0
    assert snap["recovery"]["recovered"] == injected
    latency = snap["recovery"]["latency"]
    assert latency["count"] == injected
    assert latency["max"] >= latency["p95"] >= latency["p50"] > 0


def test_recovery_on_ring_medium():
    baseline = _run(_config(interconnect="ring"))
    faulty = _run(_config(
        interconnect="ring",
        faults=FaultConfig(seed=5, receiver_drop_prob=2e-2)))
    assert _architecture(faulty) == _architecture(baseline)
    assert faulty.extra["faults"]["recovery"]["recovered"] > 0


def test_recovery_traffic_raises_reported_utilization():
    """Recovery is accounted, not hidden: the recovery channel's share
    shows up in bus utilization."""
    baseline = _run(_config())
    faulty = _run(_config(
        faults=FaultConfig(seed=2, receiver_drop_prob=5e-2)))
    assert faulty.extra["faults"]["recovery"]["recovered"] > 0
    assert faulty.bus_utilization > baseline.bus_utilization


def test_jitter_and_stalls_alone_cause_no_recovery_traffic():
    """Delay-only faults are absorbed by the BSHR wait path: nothing is
    injected as a loss, so the recovery slow path stays cold."""
    baseline = _run(_config())
    faulty = _run(_config(faults=FaultConfig(
        seed=9, jitter_prob=0.2, max_jitter=8, stall_prob=0.05)))
    assert _architecture(faulty) == _architecture(baseline)
    snap = faulty.extra["faults"]
    assert snap["injected"]["jitter_events"] > 0
    assert snap["injected"]["injected"] == 0
    assert snap["recovery"]["requests"] == 0


# ----------------------------------------------------------------------
# Determinism: the seed is the schedule.
# ----------------------------------------------------------------------
def test_same_seed_reproduces_identical_run():
    config = _config(faults=FaultConfig(seed=13, receiver_drop_prob=2e-2,
                                        corrupt_prob=1e-2))
    first, second = _run(config), _run(config)
    assert _snapshot(first) == _snapshot(second)
    assert first.extra["faults"] == second.extra["faults"]


def test_different_seeds_differ():
    def snap(seed):
        return _run(_config(faults=FaultConfig(
            seed=seed, receiver_drop_prob=5e-2))).extra["faults"]
    assert snap(1) != snap(2)


@pytest.mark.parametrize("interconnect", ["bus", "ring"])
def test_fault_schedule_survives_fast_forward(interconnect):
    """Idle-skipped cycles have no interconnect activity, so the seeded
    draw order — and therefore the whole faulty run — is identical with
    fast-forward on and off."""
    faults = FaultConfig(seed=21, receiver_drop_prob=1e-2,
                         corrupt_prob=5e-3, jitter_prob=1e-2)
    fast = _run(_config(interconnect=interconnect, faults=faults))
    dense = _run(_config(interconnect=interconnect, faults=faults,
                         fast_forward=False))
    assert _snapshot(fast) == _snapshot(dense)
    assert fast.extra["faults"] == dense.extra["faults"]


def test_fault_plan_is_deterministic_per_seed():
    config = FaultConfig(seed=77, receiver_drop_prob=0.3, corrupt_prob=0.2,
                         jitter_prob=0.3, stall_prob=0.1)

    def schedule():
        plan = FaultPlan(config, num_nodes=4)
        return [plan.for_broadcast(src % 4) for src in range(200)]

    assert schedule() == schedule()
    other = FaultPlan(dataclasses.replace(config, seed=78), num_nodes=4)
    assert [other.for_broadcast(s % 4) for s in range(200)] != schedule()


# ----------------------------------------------------------------------
# Typed failures, never hangs.
# ----------------------------------------------------------------------
def test_exhausted_retries_raise_typed_error():
    faults = FaultConfig(seed=1, receiver_drop_prob=1.0, max_retries=2)
    with pytest.raises(RecoveryExhaustedError) as excinfo:
        _run(_config(num_nodes=2, faults=faults))
    assert isinstance(excinfo.value, FaultError)
    assert isinstance(excinfo.value, SimulationError)
    assert "2 retransmit attempts" in str(excinfo.value)


def test_corruption_without_nack_is_fatal():
    faults = FaultConfig(seed=1, corrupt_prob=1.0, nack_enabled=False)
    with pytest.raises(CorruptionError) as excinfo:
        _run(_config(num_nodes=2, faults=faults))
    assert "ECC" in str(excinfo.value)


def test_silently_broken_medium_trips_wait_deadline():
    """A medium that loses deliveries *without* telling the fault layer
    violates the delivery contract; the armed BSHR tripwire converts the
    would-be deadlock into a typed error well before the generic
    deadlock detector."""

    class _LossyWrapper:
        def __init__(self, inner):
            self._inner = inner

        def broadcast(self, now, src, line, payload_bytes):
            arrivals = list(self._inner.broadcast(now, src, line,
                                                  payload_bytes))
            victim = (src + 1) % len(arrivals)
            arrivals[victim] = None  # silently never delivered
            return arrivals

        def __getattr__(self, name):
            return getattr(self._inner, name)

    class _BrokenSystem(DataScalarSystem):
        def _make_medium(self):
            return _LossyWrapper(super()._make_medium())

    config = _config(num_nodes=4,
                     faults=FaultConfig(seed=1, wait_deadline=5_000))
    with pytest.raises(BroadcastLostError) as excinfo:
        _BrokenSystem(config).run(build_program("compress"), limit=LIMIT)
    assert "recovery budget" in str(excinfo.value)


def test_fault_config_validation():
    with pytest.raises(ConfigError):
        FaultConfig(drop_prob=1.5)
    with pytest.raises(ConfigError):
        FaultConfig(max_retries=0)
    with pytest.raises(ConfigError):
        FaultConfig(backoff_factor=0)


# ----------------------------------------------------------------------
# Accounting integrity.
# ----------------------------------------------------------------------
def test_validate_final_state_catches_leaked_delivery():
    config = _config(num_nodes=2, faults=FaultConfig(seed=1))
    system = DataScalarSystem(config)
    medium = system._make_medium()
    assert isinstance(medium, FaultyMedium)
    medium.broadcast(0, 0, 0x1000, 32)
    medium.validate_final_state()  # delivered everywhere: fine
    medium._delivered[0][1] -= 1   # simulate a lost-without-recovery leak
    with pytest.raises(ProtocolError):
        medium.validate_final_state()


def test_message_meta_is_frozen():
    from repro.interconnect.message import Message, MessageKind

    message = Message(MessageKind.BROADCAST, src=0, line_addr=0x40,
                      payload_bytes=32, tag=1, meta={"hops": 2})
    assert message.meta["hops"] == 2
    with pytest.raises(TypeError):
        message.meta["hops"] = 3
    with pytest.raises(TypeError):
        message.meta["new"] = 1
