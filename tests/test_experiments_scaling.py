"""Tests for the node-count scaling experiment."""

from repro.experiments import format_scaling, run_scaling


def test_datascalar_traffic_constant_in_node_count():
    """ESP's core property: each missed line crosses the interconnect
    once, regardless of how many nodes share the program."""
    points = run_scaling("compress", node_counts=(2, 4, 8), limit=5000)
    broadcasts = [p.broadcasts for p in points]
    assert broadcasts[0] == broadcasts[1] == broadcasts[2]


def test_datascalar_advantage_grows_with_nodes():
    points = run_scaling("compress", node_counts=(2, 8), limit=5000)
    assert points[1].speedup > points[0].speedup


def test_traditional_degrades_with_nodes():
    points = run_scaling("compress", node_counts=(2, 4, 8), limit=5000)
    trad = [p.traditional_ipc for p in points]
    assert trad[0] >= trad[1] >= trad[2]


def test_single_node_has_no_broadcasts():
    (point,) = run_scaling("compress", node_counts=(1,), limit=4000)
    assert point.broadcasts == 0
    assert point.bus_utilization == 0.0


def test_format_scaling():
    points = run_scaling("go", node_counts=(1, 2), limit=3000)
    text = format_scaling(points)
    assert "Scaling with node count (go)" in text
    assert "DS/trad" in text
