"""Integration tests for the DataScalar multi-node system."""

import pytest

from repro.baseline import PerfectSystem, TraditionalSystem
from repro.core import DataScalarSystem
from repro.isa import ProgramBuilder
from repro.params import (
    CacheConfig,
    MemoryConfig,
    NodeConfig,
    SystemConfig,
    TraditionalConfig,
)

PAGE = 4096


def _node(cache_bytes=2048, write_allocate=False):
    cache = CacheConfig(size_bytes=cache_bytes, assoc=1, line_size=32,
                        write_allocate=write_allocate)
    return NodeConfig(
        icache=CacheConfig(size_bytes=4096, assoc=1, line_size=32),
        dcache=cache,
        memory=MemoryConfig(page_size=PAGE),
    )


def _stream_program(words=2048, iters=1):
    """Sequential read-modify-write sweep over several pages."""
    b = ProgramBuilder("stream")
    arr = b.alloc_global("arr", words * 4)
    with b.repeat(iters, "r9"):
        b.li("r1", arr)
        b.li("r2", 0)
        with b.repeat(words, "r3"):
            b.lw("r4", "r1", 0)
            b.add("r2", "r2", "r4")
            b.sw("r2", "r1", 0)
            b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def _store_heavy_program(words=2048):
    """Mostly stores (the compress-like extreme)."""
    b = ProgramBuilder("stores")
    arr = b.alloc_global("arr", words * 4)
    b.li("r1", arr)
    b.li("r2", 1)
    with b.repeat(words, "r3"):
        b.sw("r2", "r1", 0)
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def _ds(num_nodes=2, node=None, block=1):
    return DataScalarSystem(SystemConfig(
        num_nodes=num_nodes, node=node or _node(),
        distribution_block_pages=block,
    ))


def _trad(denom=2, node=None, block=1):
    return TraditionalSystem(TraditionalConfig(
        node=node or _node(), onchip_fraction_denom=denom,
        distribution_block_pages=block,
    ))


def test_all_nodes_commit_identical_instruction_counts():
    result = _ds(4).run(_stream_program())
    assert len(result.nodes) == 4
    assert result.instructions > 0
    # _collect() raises if counts diverge; also check IPC sanity.
    assert 0 < result.ipc < 8


def test_esp_only_broadcasts_on_the_bus():
    """ESP eliminates requests and write traffic from the interconnect."""
    result = _ds(2).run(_stream_program())
    total_broadcasts = sum(n.broadcasts_sent for n in result.nodes)
    assert result.bus_transactions == total_broadcasts
    assert total_broadcasts > 0


def test_store_heavy_program_generates_zero_bus_traffic():
    """Stores complete at the owner and are dropped elsewhere; with a
    write-noallocate cache a pure-store sweep never uses the bus."""
    result = _ds(2).run(_store_heavy_program())
    assert result.bus_transactions == 0
    dropped = sum(n.dropped_stores for n in result.nodes)
    assert dropped > 0


def test_broadcast_work_splits_across_owners():
    result = _ds(2).run(_stream_program())
    sent = [n.broadcasts_sent for n in result.nodes]
    assert all(s > 0 for s in sent)
    assert abs(sent[0] - sent[1]) <= max(sent) * 0.5


def test_datascalar_beats_traditional_on_streaming():
    program = _stream_program()
    ds = _ds(2).run(program)
    trad = _trad(2).run(program)
    assert ds.ipc > trad.ipc


def test_traditional_degrades_with_less_onchip_memory():
    program = _stream_program()
    half = _trad(2).run(program)
    quarter = _trad(4).run(program)
    assert quarter.ipc <= half.ipc


def test_datascalar_degrades_less_than_traditional_with_more_nodes():
    program = _stream_program()
    ds_drop = _ds(2).run(program).ipc - _ds(4).run(program).ipc
    trad_drop = _trad(2).run(program).ipc - _trad(4).run(program).ipc
    assert ds_drop <= trad_drop + 0.05


def test_perfect_cache_is_an_upper_bound():
    program = _stream_program()
    perfect = PerfectSystem().run(program)
    ds = _ds(2).run(program)
    trad = _trad(2).run(program)
    assert perfect.ipc >= ds.ipc
    assert perfect.ipc >= trad.ipc


def test_traditional_sends_requests_and_writebacks():
    result = _trad(2).run(_stream_program())
    assert result.requests > 0
    assert result.writebacks_offchip + result.writethroughs_offchip > 0
    assert result.bus_transactions >= result.requests * 2


def test_replicated_pages_eliminate_broadcasts():
    program = _stream_program(words=1024)
    # Replicate every global page the program touches.
    from repro.memory import GLOBAL_BASE
    pages = frozenset(range(GLOBAL_BASE // PAGE, GLOBAL_BASE // PAGE + 2))
    replicated = _ds(2).run(program, replicated_pages=pages)
    distributed = _ds(2).run(program)
    repl_bcasts = sum(n.broadcasts_sent for n in replicated.nodes)
    dist_bcasts = sum(n.broadcasts_sent for n in distributed.nodes)
    assert repl_bcasts < dist_bcasts
    assert replicated.ipc >= distributed.ipc


def test_single_node_datascalar_never_broadcasts():
    result = _ds(1).run(_stream_program(words=512))
    assert result.bus_transactions == 0
    assert result.nodes[0].remote_loads == 0


def test_limit_truncates_run_cleanly():
    result = _ds(2).run(_stream_program(), limit=500)
    assert result.instructions == 500


def test_iterating_workload_caches_second_pass():
    """On a second sweep that fits in cache, misses mostly disappear."""
    node = _node(cache_bytes=16 * 1024)
    one = _ds(2, node=node).run(_stream_program(words=512, iters=1))
    two = _ds(2, node=node).run(_stream_program(words=512, iters=2))
    one_b = sum(n.broadcasts_sent for n in one.nodes)
    two_b = sum(n.broadcasts_sent for n in two.nodes)
    assert two_b < one_b * 1.5  # second pass adds almost no broadcasts


def test_max_cycles_guard():
    from repro.errors import SimulationError
    config = SystemConfig(num_nodes=2, node=_node(), max_cycles=10,
                          distribution_block_pages=1)
    with pytest.raises(SimulationError):
        DataScalarSystem(config).run(_stream_program())


def test_write_allocate_generates_extra_broadcasts():
    """The paper's argument for write-noallocate under ESP: a write-miss
    allocation forces an inter-processor broadcast that the write then
    overwrites."""
    program = _store_heavy_program()
    noalloc = _ds(2, node=_node(write_allocate=False)).run(program)
    alloc = _ds(2, node=_node(write_allocate=True)).run(program)
    assert sum(n.broadcasts_sent for n in alloc.nodes) > 0
    assert noalloc.bus_transactions == 0
