"""The specialized timing loop: hot-path structures and skip bounds.

The per-cycle fast path leans on three precomputed/in-place structures
(the RUU free list, the LSQ unissued-store counter, the FU-class
arbitration tables) and on :meth:`Pipeline.next_event` being an *exact*
quiescence bound — the per-pipeline deep-skip scheduler
(:meth:`DataScalarSystem._run_selective`) simply does not tick a
pipeline before its own bound.  These tests pin each structure's
contract directly, then drive randomized programs to check the bound
against dense ticking, and finally pin the fault-recovery
(retransmit-backoff) arrival arithmetic that the skip scheduler relies
on being materialized eagerly.
"""

import dataclasses
import random

import pytest

from repro.baseline.perfect import PerfectMemory
from repro.core import DataScalarSystem
from repro.cpu.func_units import FUPool
from repro.cpu.lsq import LSQ
from repro.cpu.pipeline import Pipeline
from repro.cpu.ruu import RUU
from repro.experiments.config import datascalar_config
from repro.faults.medium import FaultyMedium
from repro.faults.plan import BroadcastFault
from repro.interconnect.medium import make_medium
from repro.isa import Interpreter, ProgramBuilder
from repro.isa.opcodes import OpClass
from repro.params import BusConfig, CPUConfig, FaultConfig
from repro.workloads import build_program


# ----------------------------------------------------------------------
# Helpers: tiny dynamic instructions for driving RUU/LSQ directly.
# ----------------------------------------------------------------------

class _Dyn:
    """Minimal stand-in for a traced dynamic instruction."""

    def __init__(self, seq, op_class=OpClass.IALU, dest=None, srcs=(),
                 addr=0, size=4, private=False):
        self.seq = seq
        self.op_class = int(op_class)
        self.dest = dest
        self.srcs = srcs
        self.addr = addr
        self.size = size
        self.private = private


# ----------------------------------------------------------------------
# RUU free list.
# ----------------------------------------------------------------------

def test_ruu_free_list_recycles_committed_entries():
    ruu = RUU(capacity=4)
    first = ruu.dispatch(_Dyn(0, dest="r1"), now=0)
    ruu.resolve(first, 1)
    popped = ruu.pop_head()
    assert popped is first
    # The recycled object must be indistinguishable from a fresh one.
    again = ruu.dispatch(_Dyn(7, op_class=OpClass.LOAD, dest="r2",
                              addr=128), now=5)
    assert again is first  # same object, recycled through the free list
    assert again.seq == 7 and again.is_load and not again.is_store
    assert again.dispatched_at == 5 and again.operand_time == 5
    assert again.issued is False and again.issued_at == -1
    assert again.result_time is None and again.dependents is None
    assert again.handle is None and again.unresolved == 0


def test_ruu_free_list_reuse_preserves_dependence_wiring():
    ruu = RUU(capacity=4)
    producer = ruu.dispatch(_Dyn(0, dest="r1"), now=0)
    ruu.resolve(producer, 3)
    assert ruu.pop_head() is producer
    # Recycle the object as a new in-flight producer: the stale
    # dependents/result_time from its first life must not leak into the
    # wiring of its second.
    fresh = ruu.dispatch(_Dyn(1, dest="r2"), now=4)
    assert fresh is producer  # recycled through the free list
    consumer = ruu.dispatch(_Dyn(2, dest="r3", srcs=("r2",)), now=4)
    assert consumer.unresolved == 1
    assert fresh.dependents == [consumer]
    ruu.resolve(fresh, 9)
    assert consumer.unresolved == 0
    assert consumer.operand_time == 9


def test_ruu_free_list_is_bounded_by_capacity():
    ruu = RUU(capacity=2)
    for seq in range(8):
        ruu.dispatch(_Dyn(seq), now=seq)
        ruu.resolve(ruu.head(), seq)
        ruu.pop_head()
    assert len(ruu._free) <= ruu.capacity


# ----------------------------------------------------------------------
# LSQ unissued-store counter.
# ----------------------------------------------------------------------

def test_lsq_unissued_store_counter_tracks_lifecycle():
    ruu = RUU(capacity=1024)
    lsq = LSQ(capacity=8)
    store0 = _make_entry(ruu, 0, OpClass.STORE, addr=0)
    load1 = _make_entry(ruu, 1, OpClass.LOAD, addr=64)
    store2 = _make_entry(ruu, 2, OpClass.STORE, addr=8)
    for entry in (store0, load1, store2):
        lsq.insert(entry)
    assert lsq._unissued_stores == 2
    assert lsq.has_unissued_earlier_store(load1)

    store0.issued = True
    lsq.note_store_issued()
    assert lsq._unissued_stores == 1
    # The remaining unissued store (seq 2) is *younger* than the load,
    # so the O(1) counter alone must not force a stall.
    assert not lsq.has_unissued_earlier_store(load1)

    store2.issued = True
    lsq.note_store_issued()
    assert lsq._unissued_stores == 0
    # Steady state: the check short-circuits without scanning.
    assert not lsq.has_unissued_earlier_store(load1)

    lsq.release_head(store0)
    lsq.release_head(load1)
    lsq.release_head(store2)
    assert len(lsq) == 0 and lsq._unissued_stores == 0


def test_lsq_counter_matches_brute_force_scan_under_random_traffic():
    rng = random.Random(42)
    ruu = RUU(capacity=4096)
    lsq = LSQ(capacity=16)
    live = []
    seq = 0
    for _ in range(400):
        action = rng.random()
        if action < 0.45 and not lsq.is_full():
            kind = OpClass.STORE if rng.random() < 0.5 else OpClass.LOAD
            entry = _make_entry(ruu, seq, kind,
                                addr=rng.randrange(0, 256, 4))
            lsq.insert(entry)
            live.append(entry)
            seq += 1
        elif action < 0.75:
            unissued = [e for e in live if e.is_store and not e.issued]
            if unissued:
                choice = rng.choice(unissued)
                choice.issued = True
                lsq.note_store_issued()
        elif live:
            head = live.pop(0)
            if head.is_store and not head.issued:
                head.issued = True
                lsq.note_store_issued()
            lsq.release_head(head)
        expected = sum(1 for e in live if e.is_store and not e.issued)
        assert lsq._unissued_stores == expected
        for probe in live:
            if probe.is_load:
                brute = any(e.is_store and not e.issued
                            and e.seq < probe.seq for e in live)
                assert lsq.has_unissued_earlier_store(probe) == brute


def _make_entry(ruu, seq, op_class, addr):
    return ruu.dispatch(_Dyn(seq, op_class=op_class, addr=addr), now=0)


# ----------------------------------------------------------------------
# FU arbitration tables.
# ----------------------------------------------------------------------

def test_fu_tables_mirror_config():
    config = CPUConfig()
    fus = FUPool(config)
    for op_class in OpClass:
        index = int(op_class)
        assert fus.latency_table[index] == config.fu_latencies[
            op_class.fu_name]
        count = config.fu_counts.get(op_class.fu_name)
        if count is not None:
            assert fus.limit_table[index] == count
        assert fus.latency(index) == fus.latency_table[index]


def test_fu_try_claim_enforces_per_class_per_cycle_limits():
    config = CPUConfig()
    fus = FUPool(config)
    limited = [int(c) for c in OpClass
               if config.fu_counts.get(c.fu_name) is not None]
    assert limited, "config under test must limit at least one FU class"
    op_class = limited[0]
    limit = fus.limit_table[op_class]
    for _ in range(limit):
        assert fus.try_claim(10, op_class)
    assert not fus.try_claim(10, op_class)  # class slots exhausted
    # Other classes are unaffected by this class's exhaustion.
    other = next(i for i in range(len(fus.limit_table)) if i != op_class)
    assert fus.try_claim(10, other)
    # A new cycle resets every class's slot counter.
    assert fus.try_claim(11, op_class)


# ----------------------------------------------------------------------
# next_event vs dense ticking (the deep-skip quiescence bound).
# ----------------------------------------------------------------------

_OPS = ["addi", "add", "mul", "lw", "sw"]


def _random_program(rng):
    builder = ProgramBuilder()
    base = builder.alloc_global("buf", 256)
    builder.li("r15", base)
    for _ in range(rng.randrange(3, 40)):
        op = rng.choice(_OPS)
        reg = f"r{rng.randrange(1, 13)}"
        if op == "addi":
            builder.addi(reg, reg, 1)
        elif op == "add":
            builder.add(reg, reg, "r15")
        elif op == "mul":
            builder.mul(reg, reg, reg)
        elif op == "lw":
            builder.lw(reg, "r15", rng.randrange(0, 32) * 4)
        else:
            builder.sw(reg, "r15", rng.randrange(0, 32) * 4)
    builder.halt()
    return builder.build()


def _random_cpu(rng):
    return CPUConfig(
        fetch_width=rng.choice([1, 2, 4]),
        issue_width=rng.choice([1, 2, 4]),
        commit_width=rng.choice([1, 2, 4]),
        ruu_entries=rng.choice([8, 16, 32]),
        lsq_entries=rng.choice([4, 8]),
    )


def _observable(pipeline):
    """Everything ``next_event`` promises stays frozen before the bound:
    commit-side counters, the window population, and issue activity
    (entries only leave the window at commit, so the per-entry issued
    flags are a faithful issue detector)."""
    stats = pipeline.stats
    return (
        stats.committed, stats.loads, stats.stores, stats.branches,
        stats.mispredicts,
        len(pipeline.ruu.window),
        sum(1 for entry in pipeline.ruu.window if entry.issued),
    )


def _drive_checking_bounds(pipeline, max_cycles=50_000):
    """Dense-tick to completion, verifying after every tick that the
    cycles strictly before ``next_event``'s bound are observationally
    idle (exactly what the skip schedulers assume when they jump)."""
    now = 0
    while not pipeline.done:
        assert now < max_cycles, "bounded program failed to finish"
        pipeline.tick(now)
        if pipeline.done:
            return now + 1
        bound = pipeline.next_event(now)
        stop = min(bound, max_cycles)
        if stop > now + 1:
            frozen = _observable(pipeline)
            for idle in range(now + 1, stop):
                pipeline.tick(idle)
                assert _observable(pipeline) == frozen, (
                    f"activity at cycle {idle}, inside the idle span "
                    f"promised by next_event({now}) == {bound}"
                )
                if pipeline.done:
                    return idle + 1
            now = stop
        else:
            now += 1
    return now


@pytest.mark.parametrize("seed_block", range(4))
def test_next_event_bound_matches_dense_ticking(seed_block):
    """200 random (program, machine-shape) pairs: dense ticking must be
    observationally idle strictly before every ``next_event`` bound,
    and interleaving ``next_event`` with dense ticking (what the
    fast-forward scheduler does every cycle) must not change one final
    number vs a pure dense run."""
    for seed in range(seed_block * 50, seed_block * 50 + 50):
        rng = random.Random(seed)
        program = _random_program(rng)
        cpu = _random_cpu(rng)

        checked = Pipeline(cpu, PerfectMemory(),
                           Interpreter(program).trace())
        cycles = _drive_checking_bounds(checked)

        dense = Pipeline(cpu, PerfectMemory(),
                         Interpreter(program).trace())
        now = 0
        while not dense.done:
            dense.tick(now)
            now += 1
        assert cycles == now, f"seed {seed}: cycle count diverged"
        for slot in dense.stats.__slots__:
            assert getattr(checked.stats, slot) == getattr(
                dense.stats, slot), f"seed {seed}: stats.{slot} diverged"


# ----------------------------------------------------------------------
# Fault recovery (BSHR retransmit backoff) is eager and exact.
# ----------------------------------------------------------------------

class _ScriptedPlan:
    """Deterministic replacement for the seeded FaultPlan."""

    def __init__(self, faults, outcomes=()):
        self._faults = list(faults)
        self._outcomes = list(outcomes)

    def for_broadcast(self, src):
        if self._faults:
            return self._faults.pop(0)
        return BroadcastFault()

    def retransmit_outcome(self):
        if self._outcomes:
            return self._outcomes.pop(0)
        return (False, False)


def _faulty_bus(config, num_nodes=2):
    bus = BusConfig()
    return FaultyMedium(make_medium("bus", bus, num_nodes), config,
                        num_nodes, bus), bus


def test_recovered_arrival_is_materialized_eagerly_and_exactly():
    """A dropped delivery's repaired arrival must come back from
    ``broadcast`` itself (absolute cycle, timeout + one request/data
    round trip) — not as a deferred event the skip scheduler would have
    to poll for."""
    config = FaultConfig(seed=0, receiver_drop_prob=1.0)
    medium, bus = _faulty_bus(config)
    medium.plan = _ScriptedPlan([BroadcastFault(dropped=frozenset({1}))])

    clean = make_medium("bus", BusConfig(), 2)
    due = clean.broadcast(0, 0, 0x1000, 64)[1]

    request = bus.interface_latency + bus.transfer_cycles(0)
    data = bus.interface_latency + bus.transfer_cycles(64)
    expected = due + config.bshr_timeout + request + data

    arrivals = medium.broadcast(0, 0, 0x1000, 64)
    assert arrivals[1] == expected
    assert medium.recovery_stats.timeouts == 1
    assert medium.recovery_stats.retransmits == 1
    assert medium.recovery_stats.recovered == 1
    # next_event mirrors the materialized arrival exactly — and is
    # consumed once reached, never lingering as a stale skip bound.
    assert medium.next_event(0) == expected
    assert medium.next_event(expected) is None


def test_retransmit_backoff_arithmetic_is_exact():
    """Failed retransmit attempts pay timeout + exponential backoff;
    the final arrival must land on exactly the closed-form cycle."""
    config = FaultConfig(seed=0, receiver_drop_prob=1.0)
    medium, bus = _faulty_bus(config)
    medium.plan = _ScriptedPlan(
        [BroadcastFault(dropped=frozenset({1}))],
        outcomes=[(True, False), (True, False), (False, False)],
    )

    clean = make_medium("bus", BusConfig(), 2)
    due = clean.broadcast(0, 0, 0x2000, 64)[1]
    request = bus.interface_latency + bus.transfer_cycles(0)
    data = bus.interface_latency + bus.transfer_cycles(64)

    when = due + config.bshr_timeout
    for attempt in range(2):  # two dropped attempts back off
        arrived = when + request + data
        when = (arrived + config.bshr_timeout
                + config.retry_backoff * config.backoff_factor ** attempt)
    expected = when + request + data

    arrivals = medium.broadcast(0, 0, 0x2000, 64)
    assert arrivals[1] == expected
    assert medium.recovery_stats.retransmits == 3
    assert medium.recovery_stats.recovered == 1
    assert medium.recovery_stats.retry_high_water == 3
    assert medium.next_event(0) == expected


def test_nacked_corruption_skips_the_timeout():
    """ECC failure is detected at arrival: the NACK leaves immediately,
    so the repaired arrival must NOT be charged the sequence-gap bound."""
    config = FaultConfig(seed=0, corrupt_prob=1.0)
    medium, bus = _faulty_bus(config)
    medium.plan = _ScriptedPlan([BroadcastFault(corrupted=frozenset({1}))])

    clean = make_medium("bus", BusConfig(), 2)
    due = clean.broadcast(0, 0, 0x3000, 64)[1]
    request = bus.interface_latency + bus.transfer_cycles(0)
    data = bus.interface_latency + bus.transfer_cycles(64)

    arrivals = medium.broadcast(0, 0, 0x3000, 64)
    assert arrivals[1] == due + request + data
    assert medium.recovery_stats.nacks == 1
    assert medium.recovery_stats.timeouts == 0


def test_fault_recovery_is_invisible_to_idle_skip():
    """Regression for the skip schedulers crossing recovery windows: a
    loss-heavy run on the slowest bus (long idle stretches, so skipping
    actually matters) must be bit-identical between fast-forward and
    dense ticking, with real recoveries in play."""
    from repro.experiments.config import timing_bus_config
    from repro.isa.interpreter import Interpreter as _Interp

    class _DenseSystem(DataScalarSystem):
        def _make_trace(self, program, node_id, limit):
            return _Interp(program).trace(limit=limit)

    program = build_program("compress")
    faults = FaultConfig(seed=11, receiver_drop_prob=3e-2, corrupt_prob=1e-2)
    config = dataclasses.replace(
        datascalar_config(
            num_nodes=4,
            bus=timing_bus_config(cycles_per_bus_cycle=16)),
        faults=faults)
    assert config.fast_forward

    fast = DataScalarSystem(config).run(program, limit=1_500)
    dense = _DenseSystem(
        dataclasses.replace(config, fast_forward=False)).run(
            program, limit=1_500)

    assert fast.cycles == dense.cycles
    assert fast.instructions == dense.instructions
    assert fast.bus_transactions == dense.bus_transactions
    assert fast.extra["faults"] == dense.extra["faults"]
    assert fast.extra["faults"]["recovery"]["recovered"] > 0
