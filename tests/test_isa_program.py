"""Unit tests for the Program container."""

import pytest

from repro.errors import AssemblyError
from repro.isa import ProgramBuilder
from repro.memory.address import (
    GLOBAL_BASE,
    HEAP_BASE,
    INSTRUCTION_BYTES,
    TEXT_BASE,
    Segment,
)


def _tiny_program():
    b = ProgramBuilder("tiny")
    b.alloc_global("g", 100)
    b.alloc_heap("h", 200)
    b.li("r1", 1)
    b.halt()
    return b.build()


def test_pc_mapping_roundtrip():
    program = _tiny_program()
    for index in range(len(program)):
        pc = program.pc_of(index)
        assert program.index_of_pc(pc) == index
    assert program.pc_of(0) == TEXT_BASE


def test_segment_sizes_reflect_allocations():
    program = _tiny_program()
    assert program.text_bytes == 2 * INSTRUCTION_BYTES
    assert program.global_bytes >= 100
    assert program.heap_bytes >= 200


def test_segment_extents_cover_allocations():
    program = _tiny_program()
    extents = program.segment_extents()
    lo, hi = extents[Segment.GLOBAL]
    assert lo == GLOBAL_BASE and hi >= GLOBAL_BASE + 100
    lo, hi = extents[Segment.HEAP]
    assert lo == HEAP_BASE and hi >= HEAP_BASE + 200
    lo, hi = extents[Segment.STACK]
    assert hi - lo == 64 * 1024


def test_label_resolution_to_index():
    b = ProgramBuilder()
    b.li("r1", 0)
    b.label("there")
    b.halt()
    b.j("there")
    program = b.build()
    assert program.instructions[2].target == 1


def test_validate_rejects_no_halt():
    b = ProgramBuilder()
    b.nop()
    with pytest.raises(AssemblyError):
        b.build()


def test_repr_mentions_name_and_sizes():
    text = repr(_tiny_program())
    assert "tiny" in text and "instrs" in text
