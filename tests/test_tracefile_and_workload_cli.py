"""Tests for trace persistence and the workloads CLI."""

import pytest

from repro.baseline.perfect import PerfectMemory
from repro.cpu.pipeline import Pipeline
from repro.errors import ReproError
from repro.isa import Interpreter, ProgramBuilder
from repro.isa.tracefile import load_trace, save_trace
from repro.params import CPUConfig
from repro.workloads.__main__ import main as workloads_main


def _program():
    b = ProgramBuilder()
    base = b.alloc_global("buf", 64)
    b.li("r1", base)
    b.li("r2", 3)
    with b.repeat(4, "r3"):
        b.sw("r2", "r1", 0)
        b.lw("r4", "r1", 0)
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def test_trace_roundtrip_is_lossless(tmp_path):
    program = _program()
    path = tmp_path / "t.trace"
    count = save_trace(path, Interpreter(program).trace())
    original = list(Interpreter(program).trace())
    replayed = list(load_trace(path))
    assert count == len(original) == len(replayed)
    for a, b in zip(original, replayed):
        assert (a.seq, a.pc, a.op_class, a.dest, a.srcs, a.addr, a.size,
                a.taken, a.is_cond_branch) == (
            b.seq, b.pc, b.op_class, b.dest, b.srcs, b.addr, b.size,
            b.taken, b.is_cond_branch)


def test_replayed_trace_drives_pipeline_identically(tmp_path):
    program = _program()
    path = tmp_path / "t.trace"
    save_trace(path, Interpreter(program).trace())
    live = Pipeline(CPUConfig(), PerfectMemory(),
                    Interpreter(program).trace()).run(100_000)
    replay = Pipeline(CPUConfig(), PerfectMemory(),
                      load_trace(path)).run(100_000)
    assert replay.committed == live.committed
    assert replay.cycles == live.cycles


def test_load_rejects_non_trace_files(tmp_path):
    path = tmp_path / "junk.txt"
    path.write_text("hello\n")
    with pytest.raises(ReproError):
        list(load_trace(path))


def test_load_rejects_malformed_records(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("#repro-trace-v1\n1\t2\t3\n")
    with pytest.raises(ReproError):
        list(load_trace(path))


# ----------------------------------------------------------------------
# Workloads CLI.
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert workloads_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out and "tomcatv" in out and "[fp]" in out


def test_cli_run(capsys):
    assert workloads_main(["run", "go", "--limit", "2000"]) == 0
    out = capsys.readouterr().out
    assert "go (scale 1)" in out
    assert "instructions" in out


def test_cli_disasm(capsys):
    assert workloads_main(["disasm", "li"]) == 0
    out = capsys.readouterr().out
    assert "lw" in out and "halt" in out


def test_cli_unknown_workload():
    with pytest.raises(ReproError):
        workloads_main(["run", "crysis"])
