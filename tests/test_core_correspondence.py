"""Unit tests for correspondence classification and debt accounting."""

from repro.core.correspondence import CorrespondenceTracker


def test_classification_matrix():
    tracker = CorrespondenceTracker()
    assert tracker.classify(True, True) == "true_hit"
    assert tracker.classify(False, False) == "true_miss"
    assert tracker.classify(True, False) == "false_hit"
    assert tracker.classify(False, True) == "false_miss"
    stats = tracker.stats
    assert (stats.true_hits, stats.true_misses,
            stats.false_hits, stats.false_misses) == (1, 1, 1, 1)
    assert stats.classified == 4


def test_owner_eager_broadcast_funds_canonical_miss():
    tracker = CorrespondenceTracker()
    tracker.note_broadcast_sent(0x100)
    assert tracker.settle_canonical_miss_owner(0x100) is False
    assert tracker.stats.reparative_broadcasts == 0


def test_owner_unfunded_canonical_miss_requires_reparative():
    tracker = CorrespondenceTracker()
    assert tracker.settle_canonical_miss_owner(0x100) is True
    assert tracker.stats.reparative_broadcasts == 1


def test_owner_credits_are_per_line():
    tracker = CorrespondenceTracker()
    tracker.note_broadcast_sent(0x100)
    assert tracker.settle_canonical_miss_owner(0x200) is True
    assert tracker.settle_canonical_miss_owner(0x100) is False


def test_owner_credits_stack():
    tracker = CorrespondenceTracker()
    tracker.note_broadcast_sent(0x100)
    tracker.note_broadcast_sent(0x100)
    assert tracker.settle_canonical_miss_owner(0x100) is False
    assert tracker.settle_canonical_miss_owner(0x100) is False
    assert tracker.settle_canonical_miss_owner(0x100) is True


def test_nonowner_wait_consumed_by_canonical_miss():
    tracker = CorrespondenceTracker()
    tracker.note_bshr_wait(0x100)
    assert tracker.settle_canonical_miss_nonowner(0x100) is False
    assert tracker.unmatched_waits() == 0


def test_nonowner_unfunded_canonical_miss_schedules_discard():
    tracker = CorrespondenceTracker()
    assert tracker.settle_canonical_miss_nonowner(0x100) is True
    assert tracker.stats.scheduled_discards == 1


def test_unmatched_waits_reported():
    tracker = CorrespondenceTracker()
    tracker.note_bshr_wait(0x100)
    tracker.note_bshr_wait(0x200)
    tracker.settle_canonical_miss_nonowner(0x100)
    assert tracker.unmatched_waits() == 1


def test_owner_and_nonowner_books_are_independent():
    tracker = CorrespondenceTracker()
    tracker.note_broadcast_sent(0x100)
    # A non-owner settle must not consume a broadcast credit.
    assert tracker.settle_canonical_miss_nonowner(0x100) is True
    assert tracker.settle_canonical_miss_owner(0x100) is False
