"""Content addressing: canonicalization, digests, fingerprints."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ReproError
from repro.experiments.config import datascalar_config, timing_node_config
from repro.params import CacheConfig, FaultConfig
from repro.runner import (SweepPoint, canonicalize, code_version,
                          point_digest, result_fingerprint)
from repro.runner.digest import point_payload


def test_canonicalize_scalars_pass_through():
    for value in (None, True, 3, 2.5, "x"):
        assert canonicalize(value) == value


def test_canonicalize_dataclass_is_stable_and_typed():
    config = CacheConfig(size_bytes=1024, assoc=2, line_size=32)
    out = canonicalize(config)
    assert out["__type__"].endswith("CacheConfig")
    assert out["fields"]["size_bytes"] == 1024
    # Two separately constructed but equal configs canonicalize equally.
    assert out == canonicalize(CacheConfig(size_bytes=1024, assoc=2,
                                           line_size=32))


def test_canonicalize_rejects_unknown_objects():
    class Opaque:
        __slots__ = ()

    with pytest.raises(TypeError):
        canonicalize(Opaque())


def test_point_digest_is_deterministic():
    config = datascalar_config(2)
    a = SweepPoint.make("datascalar", "compress", limit=100, config=config)
    b = SweepPoint.make("datascalar", "compress", limit=100,
                        config=datascalar_config(2))
    assert point_digest(a) == point_digest(b)


def test_point_digest_sensitive_to_every_input():
    base = SweepPoint.make("datascalar", "compress", limit=100,
                           config=datascalar_config(2))
    variants = [
        SweepPoint.make("traditional", "compress", limit=100,
                        config=datascalar_config(2)),
        SweepPoint.make("datascalar", "go", limit=100,
                        config=datascalar_config(2)),
        SweepPoint.make("datascalar", "compress", limit=200,
                        config=datascalar_config(2)),
        SweepPoint.make("datascalar", "compress", scale=2, limit=100,
                        config=datascalar_config(2)),
        SweepPoint.make("datascalar", "compress", limit=100,
                        config=datascalar_config(4)),
        SweepPoint.make("datascalar", "compress", limit=100,
                        config=datascalar_config(2), hops=3),
    ]
    digests = {point_digest(p) for p in variants}
    assert point_digest(base) not in digests
    assert len(digests) == len(variants)


def test_fault_seed_reaches_the_digest():
    node = timing_node_config()
    base = datascalar_config(2, node=node)
    seeded = dataclasses.replace(
        base, faults=FaultConfig(seed=7, receiver_drop_prob=0.01))
    reseeded = dataclasses.replace(
        base, faults=FaultConfig(seed=8, receiver_drop_prob=0.01))
    digests = {
        point_digest(SweepPoint.make("datascalar", "compress",
                                     config=config))
        for config in (base, seeded, reseeded)
    }
    assert len(digests) == 3


def test_label_is_display_only():
    config = datascalar_config(2)
    a = SweepPoint.make("datascalar", "compress", config=config, label="a")
    b = SweepPoint.make("datascalar", "compress", config=config, label="b")
    assert point_digest(a) == point_digest(b)
    assert "label" not in point_payload(a)


def test_knob_order_does_not_matter():
    a = SweepPoint.make("datathread", "go", num_nodes=4, page_size=1024)
    b = SweepPoint.make("datathread", "go", page_size=1024, num_nodes=4)
    assert point_digest(a) == point_digest(b)
    assert a.knob("num_nodes") == 4
    assert a.knob("missing", "fallback") == "fallback"


def test_code_version_changes_the_digest():
    point = SweepPoint.make("perfect", "compress")
    assert point_digest(point, "v1") != point_digest(point, "v2")


def test_code_version_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
    assert code_version() == "pinned"
    monkeypatch.delenv("REPRO_CODE_VERSION")
    computed = code_version()
    assert computed and computed != "pinned"


def test_scale_must_be_positive():
    with pytest.raises(ReproError):
        from repro.workloads import build_program

        build_program("compress", 0)


def test_result_fingerprint_covers_slots_objects():
    from repro.cpu.pipeline import PipelineStats

    stats = PipelineStats()
    stats.committed = 5
    out = result_fingerprint(stats)
    assert out["committed"] == 5
    other = PipelineStats()
    other.committed = 5
    assert result_fingerprint(other) == out
    other.loads = 1
    assert result_fingerprint(other) != out
