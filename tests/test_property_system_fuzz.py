"""Protocol fuzzing: random programs through the full DataScalar system.

Every run ends with the protocol validators (BSHR drained, DCUB empty,
ledgers balanced, equal commit counts) executed inside
``DataScalarSystem.run`` — so surviving a randomized workload population
is a liveness/balance check over program shapes no hand-written kernel
covers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataScalarSystem
from repro.isa import ProgramBuilder
from repro.params import CacheConfig, MemoryConfig, NodeConfig, SystemConfig

PAGE = 4096
#: Data region: 4 pages so 2- and 4-node layouts distribute real work.
DATA_PAGES = 4

program_ops = st.lists(
    st.tuples(
        st.sampled_from(["lw", "sw", "alu", "loop_lw"]),
        st.integers(min_value=0, max_value=DATA_PAGES * PAGE // 4 - 1),
        st.integers(min_value=1, max_value=8),
    ),
    min_size=1,
    max_size=40,
)


def _build(op_list):
    b = ProgramBuilder("fuzz")
    base = b.alloc_global("data", DATA_PAGES * PAGE)
    b.li("r10", base)
    b.li("r2", 1)
    for op, word, count in op_list:
        offset = (word * 4) % (DATA_PAGES * PAGE - 64)
        if op == "lw":
            b.li("r1", base + offset)
            b.lw("r3", "r1", 0)
        elif op == "sw":
            b.li("r1", base + offset)
            b.sw("r2", "r1", 0)
        elif op == "alu":
            b.addi("r2", "r2", count)
        else:  # loop_lw: a small strided read loop
            b.li("r1", base + offset)
            with b.repeat(count, "r5"):
                b.lw("r3", "r1", 0)
                b.addi("r1", "r1", 32)
    b.halt()
    return b.build()


def _config(num_nodes, dcache_bytes, write_allocate):
    cache = CacheConfig(size_bytes=dcache_bytes, assoc=1, line_size=32,
                        write_allocate=write_allocate)
    node = NodeConfig(icache=CacheConfig(size_bytes=1024), dcache=cache,
                      memory=MemoryConfig(page_size=PAGE))
    return SystemConfig(num_nodes=num_nodes, node=node,
                        distribution_block_pages=1)


@given(program_ops,
       st.sampled_from([256, 512, 1024]),
       st.booleans())
@settings(max_examples=40, deadline=None)
def test_random_programs_keep_the_protocol_balanced(op_list, dcache_bytes,
                                                    write_allocate):
    program = _build(op_list)
    for num_nodes in (2, 4):
        config = _config(num_nodes, dcache_bytes, write_allocate)
        result = DataScalarSystem(config).run(program)
        # run() validates BSHR/DCUB/ledgers internally; check outcomes.
        assert result.instructions > 0
        assert all(n.pipeline.committed == result.instructions
                   for n in result.nodes)


@given(program_ops)
@settings(max_examples=20, deadline=None)
def test_random_programs_match_traditional_commit_counts(op_list):
    """The same program commits the same instruction count on every
    simulated machine — the trace is the single source of truth."""
    from repro.baseline import TraditionalSystem
    from repro.params import TraditionalConfig

    program = _build(op_list)
    ds = DataScalarSystem(_config(2, 1024, False)).run(program)
    node = _config(2, 1024, False).node
    trad = TraditionalSystem(TraditionalConfig(
        node=node, onchip_fraction_denom=2)).run(program)
    assert ds.instructions == trad.instructions
