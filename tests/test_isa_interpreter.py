"""Unit tests for the functional interpreter's semantics."""

import pytest

from repro.errors import ExecutionError
from repro.isa import Interpreter, OpClass, ProgramBuilder, run_program
from repro.memory.address import STACK_TOP, TEXT_BASE


def _run_regs(build_body):
    b = ProgramBuilder()
    build_body(b)
    b.halt()
    interp = Interpreter(b.build())
    interp.run()
    return interp


def test_integer_arithmetic():
    def body(b):
        b.li("r1", 7)
        b.li("r2", 3)
        b.add("r3", "r1", "r2")
        b.sub("r4", "r1", "r2")
        b.mul("r5", "r1", "r2")
        b.div("r6", "r1", "r2")
        b.rem("r7", "r1", "r2")

    regs = _run_regs(body).registers
    assert regs[3:8] == [10, 4, 21, 2, 1]


def test_division_truncates_toward_zero():
    def body(b):
        b.li("r1", -7)
        b.li("r2", 2)
        b.div("r3", "r1", "r2")
        b.rem("r4", "r1", "r2")

    regs = _run_regs(body).registers
    assert regs[3] == -3  # C semantics, not Python floor division
    assert regs[4] == -1


def test_divide_by_zero_raises():
    b = ProgramBuilder()
    b.li("r1", 1)
    b.li("r2", 0)
    b.div("r3", "r1", "r2")
    b.halt()
    with pytest.raises(ExecutionError):
        Interpreter(b.build()).run()


def test_logical_and_shift_operations():
    def body(b):
        b.li("r1", 0b1100)
        b.li("r2", 0b1010)
        b.and_("r3", "r1", "r2")
        b.or_("r4", "r1", "r2")
        b.xor("r5", "r1", "r2")
        b.slli("r6", "r1", 2)
        b.srli("r7", "r1", 2)
        b.li("r8", -8)
        b.li("r9", 1)
        b.sra("r10", "r8", "r9")

    regs = _run_regs(body).registers
    assert regs[3] == 0b1000
    assert regs[4] == 0b1110
    assert regs[5] == 0b0110
    assert regs[6] == 0b110000
    assert regs[7] == 0b11
    assert regs[10] == -4


def test_srl_is_logical_on_negative_values():
    def body(b):
        b.li("r1", -1)
        b.srli("r2", "r1", 60)

    assert _run_regs(body).registers[2] == 0xF


def test_slt_and_slti():
    def body(b):
        b.li("r1", -5)
        b.li("r2", 3)
        b.slt("r3", "r1", "r2")
        b.slt("r4", "r2", "r1")
        b.slti("r5", "r1", 0)

    regs = _run_regs(body).registers
    assert (regs[3], regs[4], regs[5]) == (1, 0, 1)


def test_zero_register_is_immutable():
    def body(b):
        b.li("r0", 42)
        b.add("r1", "r0", "r0")

    regs = _run_regs(body).registers
    assert regs[0] == 0
    assert regs[1] == 0


def test_memory_word_roundtrip_and_default_zero():
    def body(b):
        base = b.alloc_global("buf", 64)
        b.li("r1", base)
        b.li("r2", 123)
        b.sw("r2", "r1", 4)
        b.lw("r3", "r1", 4)
        b.lw("r4", "r1", 8)  # never written -> 0

    regs = _run_regs(body).registers
    assert regs[3] == 123
    assert regs[4] == 0


def test_byte_store_masks_to_eight_bits():
    def body(b):
        base = b.alloc_global("buf", 8)
        b.li("r1", base)
        b.li("r2", 0x1FF)
        b.sb("r2", "r1", 0)
        b.lb("r3", "r1", 0)

    assert _run_regs(body).registers[3] == 0xFF


def test_unaligned_access_raises():
    b = ProgramBuilder()
    base = b.alloc_global("buf", 16)
    b.li("r1", base + 2)
    b.lw("r2", "r1", 0)
    b.halt()
    with pytest.raises(ExecutionError):
        Interpreter(b.build()).run()


def test_floating_point_operations():
    stored = {}

    def body(b):
        base = b.alloc_global("d", 32)
        stored["base"] = base
        b.init_double(base, 1.5)
        b.init_double(base + 8, 2.5)
        b.li("r1", base)
        b.ld("f1", "r1", 0)
        b.ld("f2", "r1", 8)
        b.fadd("f3", "f1", "f2")
        b.fmul("f4", "f1", "f2")
        b.fsub("f5", "f2", "f1")
        b.fdiv("f6", "f2", "f1")
        b.fneg("f7", "f1")
        b.fclt("r2", "f1", "f2")
        b.sd("f3", "r1", 16)

    interp = _run_regs(body)
    fp = interp.registers
    assert fp[32 + 3] == 4.0
    assert fp[32 + 4] == 3.75
    assert fp[32 + 5] == 1.0
    assert fp[32 + 6] == pytest.approx(2.5 / 1.5)
    assert fp[32 + 7] == -1.5
    assert fp[2] == 1
    assert interp.read_double(stored["base"] + 16) == 4.0


def test_cvt_between_int_and_float():
    def body(b):
        b.li("r1", 7)
        b.cvtif("f1", "r1")
        b.fadd("f2", "f1", "f1")
        b.cvtfi("r2", "f2")

    assert _run_regs(body).registers[2] == 14


def test_branches_all_directions():
    def body(b):
        b.li("r1", 1)
        b.li("r2", 2)
        b.li("r10", 0)
        for cond, taken in [("eq", False), ("ne", True), ("lt", True),
                            ("ge", False), ("le", True), ("gt", False)]:
            label = b.fresh_label()
            getattr(b, "b" + cond)("r1", "r2", label)
            b.addi("r10", "r10", 0 if taken else 1)
            b.label(label)

    # r10 counts fall-throughs of the not-taken branches: eq, ge, gt -> 3.
    assert _run_regs(body).registers[10] == 3


def test_jal_links_return_address():
    b = ProgramBuilder()
    b.jal("target")
    b.halt()
    b.label("target")
    b.mov("r1", "r31")
    b.jr("r31")
    interp = Interpreter(b.build())
    interp.run()
    assert interp.registers[1] == TEXT_BASE + 4  # address of the halt


def test_jr_to_garbage_raises():
    b = ProgramBuilder()
    b.li("r1", 0x123)
    b.jr("r1")
    b.halt()
    with pytest.raises(ExecutionError):
        Interpreter(b.build()).run()


def test_stack_pointer_initialized_below_stack_top():
    b = ProgramBuilder()
    b.halt()
    interp = Interpreter(b.build())
    assert interp.registers[29] < STACK_TOP


def test_run_limit_stops_infinite_loop():
    b = ProgramBuilder()
    b.label("spin")
    b.j("spin")
    b.halt()
    interp = Interpreter(b.build())
    result = interp.run(limit=1000)
    assert not result.halted
    assert result.instructions == 1000


def test_load_store_counters():
    def body(b):
        base = b.alloc_global("buf", 16)
        b.li("r1", base)
        b.sw("r1", "r1", 0)
        b.lw("r2", "r1", 0)
        b.lw("r3", "r1", 0)

    interp = _run_regs(body)
    assert interp.loads == 2
    assert interp.stores == 1


def test_trace_records_memory_and_dependencies():
    b = ProgramBuilder()
    base = b.alloc_global("buf", 16)
    b.li("r1", base)
    b.lw("r2", "r1", 0)
    b.add("r3", "r2", "r1")
    b.halt()
    records = list(Interpreter(b.build()).trace())
    assert [r.op_class for r in records] == [
        int(OpClass.IALU), int(OpClass.LOAD), int(OpClass.IALU),
        int(OpClass.BRANCH),
    ]
    load = records[1]
    assert load.addr == base and load.size == 4
    assert load.dest == 2
    add = records[2]
    assert set(add.srcs) == {1, 2}
    assert [r.seq for r in records] == [0, 1, 2, 3]


def test_mem_refs_stream_includes_ifetch_and_data():
    b = ProgramBuilder()
    base = b.alloc_global("buf", 16)
    b.li("r1", base)
    b.lw("r2", "r1", 0)
    b.halt()
    refs = list(Interpreter(b.build()).mem_refs())
    kinds = [r.kind for r in refs]
    assert kinds == ["I", "I", "R", "I"]
    assert refs[0].addr == TEXT_BASE
    assert refs[2].addr == base


def test_mem_refs_can_exclude_ifetch():
    b = ProgramBuilder()
    base = b.alloc_global("buf", 16)
    b.li("r1", base)
    b.sw("r1", "r1", 0)
    b.halt()
    refs = list(Interpreter(b.build()).mem_refs(include_ifetch=False))
    assert [r.kind for r in refs] == ["W"]


def test_run_program_helper():
    b = ProgramBuilder()
    b.li("r1", 3)
    b.halt()
    result = run_program(b.build())
    assert result.halted
    assert result.registers[1] == 3
