"""Tests for the Chrome trace_event and JSONL exporters."""

import json

from repro.core.system import DataScalarSystem
from repro.experiments.config import datascalar_config
from repro.obs import EventKind, EventTracer, TraceEvent, from_jsonl, \
    to_chrome_trace, to_jsonl, write_chrome_trace, write_jsonl
from repro.workloads import build_program


def _traced_events(num_nodes=4, limit=1500):
    program = build_program("compress")
    tracer = EventTracer()
    DataScalarSystem(datascalar_config(num_nodes)).run(program, limit=limit,
                                                       tracer=tracer)
    return tracer.events


def test_chrome_trace_is_valid_json_with_per_node_tracks(tmp_path):
    events = _traced_events()
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), events)
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    names = {(row["pid"], row["args"]["name"])
             for row in doc["traceEvents"]
             if row["ph"] == "M" and row["name"] == "process_name"}
    assert names == {(node, f"node {node}") for node in range(4)}


def test_chrome_trace_broadcast_flow_pairs():
    """Every arrival gets an s->f flow arrow from its send."""
    events = _traced_events()
    rows = to_chrome_trace(events)["traceEvents"]
    starts = [row for row in rows if row["ph"] == "s"]
    finishes = [row for row in rows if row["ph"] == "f"]
    arrivals = sum(1 for event in events
                   if event.kind is EventKind.BCAST_ARRIVE)
    assert len(starts) == len(finishes) == arrivals > 0
    by_id = {row["id"]: row for row in starts}
    for finish in finishes:
        start = by_id[finish["id"]]
        assert finish["bp"] == "e"
        assert start["ts"] <= finish["ts"]
        assert start["pid"] != finish["pid"]  # sender -> receiver


def test_chrome_trace_stall_slices_carry_duration():
    events = [TraceEvent(EventKind.ISSUE_STALL, 100, 0,
                         {"cause": "window", "cycles": 40})]
    rows = to_chrome_trace(events)["traceEvents"]
    slices = [row for row in rows if row["ph"] == "X"]
    assert slices[0]["name"] == "stall:window"
    assert slices[0]["ts"] == 100 and slices[0]["dur"] == 40


def test_chrome_trace_hex_formats_line_addresses():
    events = [TraceEvent(EventKind.BSHR_ALLOC, 5, 1, {"line": 0x1f40})]
    rows = to_chrome_trace(events)["traceEvents"]
    instants = [row for row in rows if row["ph"] == "i"]
    assert instants[0]["args"]["line"] == "0x1f40"


def test_chrome_trace_skips_cache_commit_noise():
    events = [TraceEvent(EventKind.CACHE_COMMIT, 5, 0,
                         {"line": 0x40, "store": False, "hit": True,
                          "filled": False, "evicted": None})]
    rows = to_chrome_trace(events)["traceEvents"]
    assert all(row["ph"] == "M" for row in rows)


def test_medium_xfer_lands_on_interconnect_thread():
    events = _traced_events(num_nodes=2)
    rows = to_chrome_trace(events)["traceEvents"]
    xfers = [row for row in rows if row.get("cat") == "medium"]
    assert xfers and all(row["tid"] == 1 for row in xfers)
    thread_names = {(row["pid"], row["tid"]): row["args"]["name"]
                    for row in rows
                    if row["ph"] == "M" and row["name"] == "thread_name"}
    for row in xfers:
        assert thread_names[(row["pid"], 1)] == "interconnect"


def test_jsonl_round_trip(tmp_path):
    events = _traced_events(num_nodes=2, limit=1000)
    path = tmp_path / "events.jsonl"
    write_jsonl(str(path), events)
    restored = from_jsonl(path.read_text())
    assert restored == events


def test_jsonl_round_trip_preserves_kinds_and_args():
    events = [
        TraceEvent(EventKind.COMMIT, 1, 0, {"seq": 1, "op": "alu"}),
        TraceEvent(EventKind.BCAST_SEND, 2, 1,
                   {"line": 0x40, "late": False, "seq": 1}),
    ]
    assert from_jsonl(to_jsonl(events)) == events


def test_empty_exports(tmp_path):
    assert to_jsonl([]) == ""
    assert from_jsonl("") == []
    doc = to_chrome_trace([])
    assert doc["traceEvents"] == []
    path = tmp_path / "empty.jsonl"
    write_jsonl(str(path), [])
    assert path.read_text() == ""
