"""Tests for the tracer protocol and its implementations."""

import pytest

from repro.core.system import DataScalarSystem
from repro.experiments.config import datascalar_config
from repro.obs import EventKind, EventTracer, NullTracer, SamplingTracer, \
    Tracer
from repro.workloads import build_program


def test_event_tracer_records_in_order():
    tracer = EventTracer()
    tracer.emit(EventKind.COMMIT, 5, 0, seq=1, op="alu")
    tracer.emit(EventKind.COMMIT, 7, 1, seq=1, op="alu")
    assert len(tracer) == 2
    assert [event.cycle for event in tracer.events] == [5, 7]
    assert tracer.events[0].args == {"seq": 1, "op": "alu"}
    assert tracer.counts[EventKind.COMMIT] == 2


def test_event_tracer_kind_filter_counts_everything():
    tracer = EventTracer(kinds={EventKind.BCAST_SEND})
    tracer.emit(EventKind.COMMIT, 1, 0, seq=1, op="alu")
    tracer.emit(EventKind.BCAST_SEND, 2, 0, line=0x40, late=False, seq=1)
    assert len(tracer) == 1
    assert tracer.events[0].kind is EventKind.BCAST_SEND
    assert tracer.counts[EventKind.COMMIT] == 1


def test_of_kind_selects_and_preserves_order():
    tracer = EventTracer()
    tracer.emit(EventKind.COMMIT, 1, 0, seq=1, op="alu")
    tracer.emit(EventKind.BCAST_SEND, 2, 0, line=0x40)
    tracer.emit(EventKind.COMMIT, 3, 0, seq=2, op="load")
    commits = tracer.of_kind(EventKind.COMMIT)
    assert [event.args["seq"] for event in commits] == [1, 2]


def test_implementations_satisfy_protocol():
    assert isinstance(NullTracer(), Tracer)
    assert isinstance(EventTracer(), Tracer)
    assert isinstance(SamplingTracer(100), Tracer)


def test_sampling_tracer_next_event_is_next_multiple():
    tracer = SamplingTracer(100)
    assert tracer.next_event(0) == 100
    assert tracer.next_event(99) == 100
    assert tracer.next_event(100) == 200
    assert tracer.next_event(350) == 400


def test_sampling_tracer_rejects_nonpositive_period():
    with pytest.raises(ValueError):
        SamplingTracer(0)


def test_traced_run_emits_every_core_kind():
    program = build_program("compress")
    tracer = EventTracer()
    DataScalarSystem(datascalar_config(4)).run(program, limit=2000,
                                               tracer=tracer)
    for kind in (EventKind.COMMIT, EventKind.ISSUE_STALL,
                 EventKind.BCAST_SEND, EventKind.BCAST_ARRIVE,
                 EventKind.BCAST_CONSUME, EventKind.BSHR_ALLOC,
                 EventKind.DCUB_STAGE, EventKind.DCUB_APPLY,
                 EventKind.CACHE_COMMIT, EventKind.MEDIUM_XFER):
        assert tracer.counts.get(kind, 0) > 0, kind


def test_null_tracer_run_matches_untraced():
    program = build_program("compress")
    config = datascalar_config(2)
    plain = DataScalarSystem(config).run(program, limit=1500)
    nulled = DataScalarSystem(config).run(program, limit=1500,
                                          tracer=NullTracer())
    assert nulled.cycles == plain.cycles
    assert nulled.instructions == plain.instructions


def test_sampling_tracer_does_not_change_results():
    """A scheduled tracer bounds idle-skip without altering outcomes."""
    program = build_program("compress")
    config = datascalar_config(2)
    plain = DataScalarSystem(config).run(program, limit=1500)
    sampled = DataScalarSystem(config).run(program, limit=1500,
                                           tracer=SamplingTracer(64))
    assert sampled.cycles == plain.cycles
    assert sampled.instructions == plain.instructions
