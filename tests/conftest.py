"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _hermetic_sweep_cache(tmp_path, monkeypatch):
    """Point the sweep-result cache at a per-test directory.

    Tests that drive the experiments CLI (which caches by default) must
    neither read from nor write to the developer's real
    ``~/.cache/repro-sweeps``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep-cache"))
