"""Tests for the hierarchical metrics registry."""

import pytest

from repro.core.system import DataScalarSystem
from repro.experiments.config import datascalar_config
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, Series, \
    format_metrics, registry_from_result
from repro.workloads import build_program


def test_counter_gauge_histogram_series_basics():
    registry = MetricsRegistry()
    registry.counter("a.b").inc()
    registry.counter("a.b").inc(4)
    registry.gauge("a.g").set(2.5)
    registry.histogram("a.h").record(3)
    registry.histogram("a.h").record(5)
    registry.series("a.s").append(1)
    assert registry.counter("a.b").value == 5
    assert registry.gauge("a.g").value == 2.5
    assert registry.histogram("a.h").mean == 4.0
    assert len(registry.series("a.s")) == 1


def test_same_name_same_object():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_contains_and_names_sorted():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a")
    assert "a" in registry and "missing" not in registry
    assert registry.names() == ["a", "b"]


def test_subtree_selects_prefix():
    registry = MetricsRegistry()
    registry.counter("node.0.bshr.waits")
    registry.counter("node.0.cache.false_hits")
    registry.counter("node.1.bshr.waits")
    subtree = registry.subtree("node.0")
    assert set(subtree) == {"node.0.bshr.waits", "node.0.cache.false_hits"}


def test_as_dict_digests():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.histogram("h").record(10)
    registry.series("s").append(1)
    snapshot = registry.as_dict()
    assert snapshot["c"] == 2
    assert snapshot["h"]["count"] == 1 and snapshot["h"]["max"] == 10
    assert snapshot["s"] == [1]


def test_histogram_summary_percentiles():
    histogram = Histogram()
    for value in (10, 20, 30, 40, 50):
        histogram.add(value)  # the Distribution-compatible alias
    summary = histogram.summary()
    assert summary == {"count": 5, "mean": 30.0, "p50": 30.0,
                       "p95": 50.0, "max": 50}


def test_format_metrics_aligned_and_sorted():
    registry = MetricsRegistry()
    registry.counter("zzz.long.metric.name").inc(7)
    registry.gauge("aaa").set(1.5)
    text = format_metrics(registry)
    lines = text.splitlines()
    assert lines[0].startswith("aaa")
    assert lines[1].startswith("zzz.long.metric.name")
    assert "7" in lines[1] and "1.5000" in lines[0]


def test_format_metrics_empty():
    assert format_metrics(MetricsRegistry()) == "(no metrics)"


def test_metric_classes_exported():
    for cls in (Counter, Gauge, Histogram, Series):
        assert cls.__name__ in repr(cls)


def test_registry_from_result_matches_result():
    program = build_program("compress")
    result = DataScalarSystem(datascalar_config(2)).run(program, limit=1500)
    registry = registry_from_result(result)
    assert registry.counter("run.cycles").value == result.cycles
    assert registry.counter("run.instructions").value == result.instructions
    assert registry.gauge("run.ipc").value == pytest.approx(result.ipc)
    for node in result.nodes:
        prefix = f"node.{node.node_id}"
        assert registry.counter(f"{prefix}.pipeline.committed").value \
            == node.pipeline.committed
        assert registry.counter(f"{prefix}.broadcast.sent").value \
            == node.broadcasts_sent
        assert registry.counter(f"{prefix}.bshr.waits").value \
            == node.bshr_waits
