"""Tests for L2-level dynamic replication (footnote 4 alternative)."""

import dataclasses

import pytest

from repro.core import DataScalarSystem
from repro.experiments import datascalar_config, timing_node_config
from repro.params import CacheConfig
from repro.workloads import build_program

L2 = CacheConfig(size_bytes=32 * 1024, assoc=4, line_size=32,
                 write_policy="writeback", write_allocate=True)


def _config(num_nodes=2, l2=L2, dcache_bytes=2 * 1024):
    base = datascalar_config(
        num_nodes, node=timing_node_config(dcache_bytes=dcache_bytes))
    return dataclasses.replace(base, l2=l2)


def _rereference_program(words=3072, passes=3):
    """Sweeps the same array repeatedly: L1-too-big, L2-sized reuse."""
    from repro.isa import ProgramBuilder

    b = ProgramBuilder("reuse")
    arr = b.alloc_global("arr", words * 4)
    with b.repeat(passes, "r9"):
        b.li("r1", arr)
        with b.repeat(words, "r3"):
            b.lw("r4", "r1", 0)
            b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def test_l2_node_runs_clean_and_counts_hits():
    result = DataScalarSystem(_config()).run(_rereference_program())
    assert result.extra["l2_hits"] > 0
    assert result.instructions > 0


def test_l2_replication_cuts_broadcasts_on_reuse():
    program = _rereference_program()
    with_l2 = DataScalarSystem(_config()).run(program)
    without = DataScalarSystem(_config(l2=None)).run(program)
    b_with = sum(n.broadcasts_sent for n in with_l2.nodes)
    b_without = sum(n.broadcasts_sent for n in without.nodes)
    assert b_with < b_without
    assert with_l2.ipc > without.ipc


def test_l2_nodes_stay_correspondent_on_conflict_heavy_code():
    """turb3d's power-of-two strides stress the protocol; the run must
    complete with balanced ledgers (validated inside run())."""
    program = build_program("turb3d")
    result = DataScalarSystem(_config()).run(program, limit=10000)
    assert result.instructions == 10000
    total_false = sum(n.false_hits + n.false_misses for n in result.nodes)
    assert total_false >= 0  # statistics exist; protocol validated


def test_l2_first_touch_still_broadcasts():
    """Cold lines are not in any L2: the owner must still broadcast."""
    program = _rereference_program(passes=1)
    result = DataScalarSystem(_config()).run(program)
    assert sum(n.broadcasts_sent for n in result.nodes) > 0


def test_four_node_l2_system():
    program = _rereference_program()
    result = DataScalarSystem(_config(num_nodes=4)).run(program)
    assert len(result.nodes) == 4
    assert result.extra["l2_hits"] > 0
