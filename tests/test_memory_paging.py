"""Unit tests for the page table, profiling, and layout builder."""

import pytest

from repro.errors import ConfigError, MemoryError_
from repro.isa import ProgramBuilder
from repro.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    TEXT_BASE,
    LayoutSpec,
    PageTable,
    Segment,
    build_page_table,
    choose_block_size,
    profile_program,
    segment_of,
    traditional_page_table,
)

PAGE = 4096


def _program(global_bytes=4 * PAGE, heap_bytes=2 * PAGE, touch_words=64):
    b = ProgramBuilder("layout-test")
    garr = b.alloc_global("g", global_bytes)
    harr = b.alloc_heap("h", heap_bytes)
    b.li("r1", garr)
    b.li("r3", harr)
    with b.repeat(touch_words, "r2"):
        b.lw("r4", "r1", 0)
        b.sw("r4", "r3", 0)
        b.addi("r1", "r1", 4)
        b.addi("r3", "r3", 4)
    b.halt()
    return b.build()


# ----------------------------------------------------------------------
# PageTable.
# ----------------------------------------------------------------------
def test_page_table_replicated_vs_owned():
    table = PageTable(PAGE, num_owners=4)
    table.map_page(0, replicated=True)
    table.map_page(1, replicated=False, owner=2)
    assert table.is_replicated(0)
    assert not table.is_replicated(PAGE)
    assert table.owner_of(PAGE) == 2
    assert table.owner_of(0) is None
    assert table.is_local(0, 3)
    assert table.is_local(PAGE, 2)
    assert not table.is_local(PAGE, 0)


def test_page_table_remap_rejected():
    table = PageTable(PAGE, num_owners=2)
    table.map_page(5, replicated=True)
    with pytest.raises(MemoryError_):
        table.map_page(5, replicated=False, owner=0)


def test_page_table_owner_range_checked():
    table = PageTable(PAGE, num_owners=2)
    with pytest.raises(MemoryError_):
        table.map_page(0, replicated=False, owner=2)


def test_page_table_unmapped_fallback_counts():
    table = PageTable(PAGE, num_owners=2)
    owner = table.owner_of(123 * PAGE)
    assert owner == 123 % 2
    assert table.unmapped_accesses == 1
    # The synthesized entry is cached; a second access is not "unmapped".
    table.owner_of(123 * PAGE)
    assert table.unmapped_accesses == 1


def test_page_table_counts_summary():
    table = PageTable(PAGE, num_owners=2)
    table.map_page(0, replicated=True)
    table.map_page(1, replicated=False, owner=0)
    table.map_page(2, replicated=False, owner=1)
    counts = table.counts()
    assert counts["replicated"] == 1
    assert counts["per_owner"] == [1, 1]


def test_page_table_validation():
    with pytest.raises(MemoryError_):
        PageTable(1000, 2)
    with pytest.raises(MemoryError_):
        PageTable(PAGE, 0)


# ----------------------------------------------------------------------
# Profiling.
# ----------------------------------------------------------------------
def test_profile_counts_pages_and_kinds():
    program = _program()
    profile = profile_program(program, PAGE)
    assert profile.instruction_refs > 0
    assert profile.data_refs > 0
    text_page = TEXT_BASE // PAGE
    assert profile.counts[text_page] > 0
    hottest = profile.hottest(1)[0]
    assert profile.counts[hottest] == max(profile.counts.values())


def test_profile_segment_helpers():
    program = _program()
    profile = profile_program(program, PAGE)
    text_pages = profile.pages_in_segment(Segment.TEXT)
    assert all(segment_of(p * PAGE) is Segment.TEXT for p in text_pages)
    global_pages = profile.pages_in_segment(Segment.GLOBAL)
    assert global_pages  # the kernel touches global data


def test_profile_without_ifetch():
    program = _program()
    profile = profile_program(program, PAGE, include_ifetch=False)
    assert profile.instruction_refs == 0
    assert profile.data_refs > 0


# ----------------------------------------------------------------------
# Layout.
# ----------------------------------------------------------------------
def test_layout_replicates_text_and_distributes_data():
    program = _program()
    spec = LayoutSpec(num_nodes=4, page_size=PAGE, distribution_block_pages=1)
    table, summary = build_page_table(program, spec)
    assert table.is_replicated(TEXT_BASE)
    assert not table.is_replicated(GLOBAL_BASE)
    assert summary.replicated_by_segment[Segment.TEXT] >= 1
    # Round-robin with block 1: consecutive global pages rotate owners.
    owners = [table.owner_of(GLOBAL_BASE + i * PAGE) for i in range(4)]
    assert owners == [0, 1, 2, 3]


def test_layout_block_distribution_groups_pages():
    program = _program(global_bytes=8 * PAGE)
    spec = LayoutSpec(num_nodes=2, page_size=PAGE, distribution_block_pages=2)
    table, _ = build_page_table(program, spec)
    owners = [table.owner_of(GLOBAL_BASE + i * PAGE) for i in range(8)]
    assert owners[0] == owners[1]
    assert owners[2] == owners[3]
    assert owners[0] != owners[2]


def test_layout_explicit_replicated_pages():
    program = _program()
    hot = GLOBAL_BASE // PAGE
    spec = LayoutSpec(num_nodes=2, page_size=PAGE,
                      replicated_pages=frozenset({hot}))
    table, summary = build_page_table(program, spec)
    assert table.is_replicated(GLOBAL_BASE)
    assert summary.replicated_by_segment[Segment.GLOBAL] == 1


def test_layout_without_text_replication():
    program = _program()
    spec = LayoutSpec(num_nodes=2, page_size=PAGE, replicate_text=False)
    table, summary = build_page_table(program, spec)
    assert not table.is_replicated(TEXT_BASE)
    assert summary.replicated_by_segment[Segment.TEXT] == 0


def test_layout_covers_all_segments():
    program = _program()
    spec = LayoutSpec(num_nodes=2, page_size=PAGE)
    table, summary = build_page_table(program, spec)
    assert summary.total_pages == len(table)
    assert table.unmapped_accesses == 0
    table.owner_of(HEAP_BASE)
    assert table.unmapped_accesses == 0  # heap is mapped


def test_choose_block_size_splits_segments():
    program = _program(global_bytes=32 * PAGE)
    block = choose_block_size(program, PAGE, num_nodes=4)
    # Must not let one node own the whole text segment.
    assert block * PAGE * 4 <= max(program.text_bytes, PAGE * 4)
    assert block >= 1


def test_traditional_page_table_onchip_is_owner_zero():
    program = _program(global_bytes=8 * PAGE)
    table = traditional_page_table(program, denom=4, page_size=PAGE,
                                   distribution_block_pages=1)
    onchip = sum(
        1 for i in range(8) if table.is_local(GLOBAL_BASE + i * PAGE, 0)
    )
    assert onchip == 2  # 1/4 of the 8 global pages


def test_layout_spec_validation():
    with pytest.raises(ConfigError):
        LayoutSpec(num_nodes=0, page_size=PAGE)
    with pytest.raises(ConfigError):
        LayoutSpec(num_nodes=2, page_size=1000)
    with pytest.raises(ConfigError):
        LayoutSpec(num_nodes=2, page_size=PAGE, distribution_block_pages=0)
    with pytest.raises(ConfigError):
        LayoutSpec(num_nodes=2, page_size=PAGE, stack_bytes=0)
