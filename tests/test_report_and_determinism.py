"""Tests for the bar renderer and whole-simulator determinism."""

import pytest

from repro.analysis.report import render_bars
from repro.core import DataScalarSystem
from repro.experiments import datascalar_config
from repro.experiments.figure7 import render_figure7_bars, run_benchmark
from repro.workloads import build_program


def test_render_bars_scales_to_peak():
    text = render_bars(["a", "b"], [2.0, 1.0], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert "2.00" in lines[0]


def test_render_bars_title_and_unit():
    text = render_bars(["x"], [1.5], title="T", unit=" IPC")
    assert text.startswith("T\n")
    assert "1.50 IPC" in text


def test_render_bars_zero_values():
    text = render_bars(["x", "y"], [0.0, 0.0])
    assert "#" not in text


def test_render_bars_validation_and_empty():
    with pytest.raises(ValueError):
        render_bars(["a"], [1, 2])
    assert render_bars([], [], title="T") == "T"


def test_render_figure7_bars():
    row = run_benchmark("compress", limit=3000)
    text = render_figure7_bars([row])
    assert "[compress]" in text
    assert "perfect" in text and "trad 1/4" in text


def test_datascalar_simulation_is_deterministic():
    """Two runs of the same configuration produce identical cycle counts
    and statistics — the whole simulator is replayable."""
    program = build_program("go")
    config = datascalar_config(2)
    first = DataScalarSystem(config).run(program, limit=6000)
    second = DataScalarSystem(config).run(program, limit=6000)
    assert first.cycles == second.cycles
    assert first.bus_transactions == second.bus_transactions
    for a, b in zip(first.nodes, second.nodes):
        assert a.broadcasts_sent == b.broadcasts_sent
        assert a.bshr_waits == b.bshr_waits
        assert a.false_hits == b.false_hits
