"""Tests for datathread-aware page placement."""

import pytest

from repro.core import (
    AffinityGraph,
    analyze_stream,
    plan_placement,
    round_robin_placement,
)
from repro.errors import ConfigError

PAGE = 4096


def _stream(pages):
    return [page * PAGE for page in pages]


def _graph(pages):
    graph = AffinityGraph(PAGE)
    graph.observe_stream(_stream(pages))
    return graph


def test_affinity_graph_counts_transitions_and_heat():
    graph = _graph([0, 1, 0, 1, 2])
    assert graph.heat == {0: 2, 1: 2, 2: 1}
    assert graph.edges[(0, 1)] == 3
    assert graph.edges[(1, 2)] == 1


def test_affinity_graph_ignores_self_transitions():
    graph = _graph([0, 0, 0, 1])
    assert (0, 0) not in graph.edges
    assert graph.edges[(0, 1)] == 1


def test_affinity_graph_validation():
    with pytest.raises(ConfigError):
        AffinityGraph(1000)


def test_plan_groups_strongly_linked_pages():
    # Pages {0,1} ping-pong; pages {2,3} ping-pong; the pairs are
    # independent.  A good 2-node placement co-locates each pair.
    pages = [0, 1] * 20 + [2, 3] * 20
    plan = plan_placement(_graph(pages), num_nodes=2)
    assert plan.owner_of_page[0] == plan.owner_of_page[1]
    assert plan.owner_of_page[2] == plan.owner_of_page[3]
    assert plan.owner_of_page[0] != plan.owner_of_page[2]
    assert plan.cut_weight == 0 or plan.cut_weight < plan.internal_weight


def test_plan_balances_bins():
    pages = list(range(9)) * 3
    plan = plan_placement(_graph(pages), num_nodes=3)
    loads = [0, 0, 0]
    for owner in plan.owner_of_page.values():
        loads[owner] += 1
    assert max(loads) - min(loads) <= 1


def test_plan_beats_round_robin_on_cut_weight():
    # A chain 0->1->2->...->7 repeatedly: round-robin with block 1 cuts
    # every transition; affinity placement keeps runs together.
    pages = list(range(8)) * 10
    graph = _graph(pages)
    smart = plan_placement(graph, num_nodes=2)
    naive = round_robin_placement(graph, num_nodes=2, block_pages=1)
    assert smart.cut_weight < naive.cut_weight


def test_plan_lengthens_measured_datathreads():
    pages = list(range(8)) * 10
    graph = _graph(pages)
    smart = plan_placement(graph, num_nodes=2)
    naive = round_robin_placement(graph, num_nodes=2, block_pages=1)
    smart_report = analyze_stream(smart.build_page_table(PAGE),
                                  _stream(pages))
    naive_report = analyze_stream(naive.build_page_table(PAGE),
                                  _stream(pages))
    assert smart_report.mean_length > naive_report.mean_length


def test_excluded_pages_not_placed():
    graph = _graph([0, 1, 2, 0, 1, 2])
    plan = plan_placement(graph, num_nodes=2, exclude=frozenset({1}))
    assert 1 not in plan.owner_of_page
    table = plan.build_page_table(PAGE, replicated_pages=frozenset({1}))
    assert table.is_replicated(1 * PAGE)


def test_empty_graph():
    plan = plan_placement(AffinityGraph(PAGE), num_nodes=4)
    assert plan.owner_of_page == {}
    assert plan.internal_weight == 0


def test_single_node_places_everything_on_node_zero():
    plan = plan_placement(_graph([0, 1, 2]), num_nodes=1)
    assert set(plan.owner_of_page.values()) == {0}
    assert plan.cut_weight == 0


def test_num_nodes_validation():
    with pytest.raises(ConfigError):
        plan_placement(_graph([0, 1]), num_nodes=0)
