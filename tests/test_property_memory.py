"""Property-based tests (hypothesis) for the memory substrates."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Cache, LayoutSpec, PageTable, build_page_table
from repro.params import CacheConfig

LINE = 32
#: Small cache so replacements happen often: 4 sets x 2 ways.
SMALL = CacheConfig(size_bytes=256, assoc=2, line_size=LINE,
                    write_policy="writeback", write_allocate=True)

#: Addresses covering 16 distinct lines mapped onto 4 sets.
addresses = st.integers(min_value=0, max_value=15).map(lambda i: i * LINE)
access_sequences = st.lists(st.tuples(addresses, st.booleans()),
                            max_size=200)


class ReferenceCache:
    """An obviously-correct LRU model: one OrderedDict per set."""

    def __init__(self, config):
        self.config = config
        self.sets = [OrderedDict() for _ in range(config.num_sets)]

    def _set(self, line):
        return self.sets[(line // self.config.line_size)
                         % self.config.num_sets]

    def access(self, addr, is_write):
        line = addr & ~(self.config.line_size - 1)
        ways = self._set(line)
        if line in ways:
            ways.move_to_end(line)
            if is_write and self.config.write_policy == "writeback":
                ways[line] = True
            return
        if is_write and not self.config.write_allocate:
            return
        if len(ways) >= self.config.assoc:
            ways.popitem(last=False)
        ways[line] = is_write and self.config.write_policy == "writeback"

    def resident(self):
        return frozenset(line for ways in self.sets for line in ways)

    def dirty(self):
        return frozenset(line for ways in self.sets
                         for line, dirty in ways.items() if dirty)


@given(access_sequences)
@settings(max_examples=200, deadline=None)
def test_cache_matches_reference_lru_model(sequence):
    cache = Cache(SMALL)
    reference = ReferenceCache(SMALL)
    for addr, is_write in sequence:
        cache.commit_access(addr, is_write)
        reference.access(addr, is_write)
    assert cache.resident_lines() == reference.resident()
    assert cache.dirty_lines() == reference.dirty()


@given(access_sequences)
@settings(max_examples=100, deadline=None)
def test_cache_correspondence_property(sequence):
    """Identical commit-order access sequences leave identical caches —
    the invariant DataScalar's whole correspondence scheme rests on."""
    a, b = Cache(SMALL), Cache(SMALL)
    for addr, is_write in sequence:
        ra = a.commit_access(addr, is_write)
        rb = b.commit_access(addr, is_write)
        assert ra.hit == rb.hit
        assert ra.writeback == rb.writeback
    assert a.resident_lines() == b.resident_lines()


@given(access_sequences)
@settings(max_examples=100, deadline=None)
def test_cache_lookup_never_mutates(sequence):
    cache = Cache(SMALL)
    for addr, is_write in sequence:
        cache.commit_access(addr, is_write)
    before = cache.resident_lines()
    stats_before = cache.stats.accesses
    for addr, _ in sequence:
        cache.lookup(addr)
    assert cache.resident_lines() == before
    assert cache.stats.accesses == stats_before


@given(access_sequences)
@settings(max_examples=100, deadline=None)
def test_cache_occupancy_bounded_by_capacity(sequence):
    cache = Cache(SMALL)
    max_lines = SMALL.size_bytes // SMALL.line_size
    for addr, is_write in sequence:
        cache.commit_access(addr, is_write)
        assert len(cache.resident_lines()) <= max_lines


@given(
    num_nodes=st.integers(min_value=1, max_value=6),
    block=st.integers(min_value=1, max_value=5),
    global_pages=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=80, deadline=None)
def test_layout_distribution_is_balanced(num_nodes, block, global_pages):
    """Round-robin block distribution never skews owners by more than
    one block."""
    from repro.isa import ProgramBuilder

    b = ProgramBuilder()
    b.alloc_global("g", global_pages * 4096)
    b.halt()
    program = b.build()
    spec = LayoutSpec(num_nodes=num_nodes, page_size=4096,
                      distribution_block_pages=block)
    table, summary = build_page_table(program, spec)
    counts = table.counts()["per_owner"]
    assert sum(counts) == summary.communicated_pages
    assert max(counts) - min(counts) <= block


@given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1,
                max_size=50))
@settings(max_examples=100, deadline=None)
def test_page_table_fallback_is_deterministic(addrs):
    a = PageTable(4096, num_owners=4)
    b = PageTable(4096, num_owners=4)
    for addr in addrs:
        assert a.owner_of(addr) == b.owner_of(addr)
        assert a.is_replicated(addr) == b.is_replicated(addr)
