"""Unit tests for register naming and encoding."""

import pytest

from repro.errors import AssemblyError
from repro.isa import registers


def test_integer_register_encoding_roundtrip():
    for n in range(32):
        assert registers.encode(f"r{n}") == n
        assert registers.decode(n) == f"r{n}"


def test_fp_register_encoding_roundtrip():
    for n in range(32):
        encoded = registers.encode(f"f{n}")
        assert encoded == registers.FP_BASE + n
        assert registers.decode(encoded) == f"f{n}"


def test_is_fp_distinguishes_banks():
    assert not registers.is_fp(registers.encode("r5"))
    assert registers.is_fp(registers.encode("f5"))


def test_conventional_registers():
    assert registers.ZERO == 0
    assert registers.encode("r29") == registers.SP
    assert registers.encode("r31") == registers.RA


@pytest.mark.parametrize("bad", ["", "x3", "r32", "f32", "r-1", "rr", "f"])
def test_bad_register_names_rejected(bad):
    with pytest.raises(AssemblyError):
        registers.encode(bad)


def test_bad_encoding_rejected():
    with pytest.raises(AssemblyError):
        registers.decode(64)
    with pytest.raises(AssemblyError):
        registers.decode(-1)
