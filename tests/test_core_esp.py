"""Unit tests for the synchronous ESP (Massive Memory Machine) model."""

import pytest

from repro.core import MassiveMemoryMachine
from repro.errors import ConfigError


def test_figure1_schedule_matches_paper():
    """Figure 1: w1-w4 on machine 0 at cycles 1-4, lead change, w5-w7 on
    machine 1 at cycles 7-9, lead change, w8-w9 at cycles 12-13."""
    mmm = MassiveMemoryMachine(num_processors=2)
    result = mmm.figure1_example()
    assert result.receive_times == [1, 2, 3, 4, 7, 8, 9, 12, 13]
    assert result.lead_changes == 2
    assert result.datathreads == [4, 3, 2]


def test_single_owner_pipelines_at_broadcast_latency():
    mmm = MassiveMemoryMachine(num_processors=4)
    result = mmm.schedule([0] * 10)
    assert result.receive_times == list(range(1, 11))
    assert result.lead_changes == 0
    assert result.datathreads == [10]


def test_alternating_owners_pay_every_lead_change():
    mmm = MassiveMemoryMachine(num_processors=2, broadcast_latency=1,
                               lead_change_penalty=3)
    result = mmm.schedule([0, 1, 0, 1])
    assert result.lead_changes == 3
    assert result.total_cycles == 1 + 3 + 3 + 3
    assert result.mean_datathread_length == 1.0


def test_longer_datathreads_beat_shorter_for_same_string_length():
    mmm = MassiveMemoryMachine(num_processors=2)
    blocked = mmm.schedule([0] * 4 + [1] * 4)
    interleaved = mmm.schedule([0, 1] * 4)
    assert blocked.total_cycles < interleaved.total_cycles


def test_owner_out_of_range_rejected():
    mmm = MassiveMemoryMachine(num_processors=2)
    with pytest.raises(ConfigError):
        mmm.schedule([0, 2])


def test_empty_reference_string():
    result = MassiveMemoryMachine(2).schedule([])
    assert result.receive_times == []
    assert result.total_cycles == 0
    assert result.mean_datathread_length == 0.0


@pytest.mark.parametrize("kwargs", [
    {"num_processors": 0},
    {"num_processors": 2, "broadcast_latency": 0},
    {"num_processors": 2, "broadcast_latency": 2, "lead_change_penalty": 1},
])
def test_validation(kwargs):
    with pytest.raises(ConfigError):
        MassiveMemoryMachine(**kwargs)
