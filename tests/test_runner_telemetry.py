"""Sweep telemetry: worker spools, point records, manifests, progress,
and the error-message satellites."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.errors import PointTimeoutError, ReproError, RunnerError
from repro.experiments.config import datascalar_config, timing_node_config, \
    traditional_config
from repro.runner import (ProgressLine, ResultCache, RunManifest,
                          SweepPoint, SweepRunner, TelemetryReader,
                          TelemetryWriter, result_fingerprint,
                          worker_tracks)
from repro.runner.executors import executor

LIMIT = 1500


def _points():
    node = timing_node_config()
    return [
        SweepPoint.make("perfect", "compress", limit=LIMIT,
                        config=node.cpu),
        SweepPoint.make("datascalar", "compress", limit=LIMIT,
                        config=datascalar_config(2, node=node)),
        SweepPoint.make("traditional", "compress", limit=LIMIT,
                        config=traditional_config(2, node=node)),
        # Same digest as the first point: a dedup alias.
        SweepPoint.make("perfect", "compress", limit=LIMIT,
                        config=node.cpu, label="perfect-again"),
    ]


# Registered at import time so fork-based pool workers inherit them.
@executor("sleepy")
def _run_sleepy(point):
    time.sleep(point.knob("seconds", 5.0))
    return "slept"


@executor("telemetry-bogus")
def _run_bogus(point):
    raise ReproError("intentional telemetry-test failure")


# ----------------------------------------------------------------------
# Point telemetry.
# ----------------------------------------------------------------------
def test_point_telemetry_rows_in_sweep_order_jobs2():
    points = _points()
    runner = SweepRunner(jobs=2, telemetry=True)
    runner.run(points)
    rows = runner.point_telemetry
    assert [row.index for row in rows] == [0, 1, 2, 3]
    assert [row.label for row in rows] == \
        [point.label or point.kind for point in points]
    executed = [row for row in rows if not row.cached and not row.deduped]
    assert len(executed) == 3
    assert all(row.wall > 0 for row in executed)
    assert all(row.worker is not None for row in executed)
    assert all(row.spans for row in executed)
    alias = rows[3]
    assert alias.deduped and alias.digest == rows[0].digest
    assert alias.wall == rows[0].wall  # shares the one execution


def test_point_telemetry_serial_matches_parallel_shape():
    points = _points()
    runner = SweepRunner(jobs=1, telemetry=True)
    runner.run(points)
    rows = runner.point_telemetry
    assert [row.index for row in rows] == [0, 1, 2, 3]
    executed = [row for row in rows if not row.deduped]
    assert all(row.worker is None for row in executed)  # in-process
    assert all(row.spans for row in executed)
    assert worker_tracks(rows)[0][0] == "serial"


def test_cached_points_carry_zero_cost(tmp_path):
    points = _points()[:2]
    cache = ResultCache(str(tmp_path / "cache"))
    warm = SweepRunner(jobs=1, cache=cache, telemetry=True)
    warm.run(points)
    runner = SweepRunner(jobs=1, cache=cache, telemetry=True)
    runner.run(points)
    rows = runner.point_telemetry
    assert all(row.cached for row in rows)
    assert all(row.wall == 0.0 and not row.spans for row in rows)


def test_telemetry_accumulates_across_runs_with_global_indices():
    points = _points()[:2]
    runner = SweepRunner(jobs=1, telemetry=True)
    runner.run(points)
    runner.run(points)
    assert [row.index for row in runner.point_telemetry] == [0, 1, 2, 3]


def test_results_bit_identical_with_telemetry_on():
    points = _points()
    reference = SweepRunner(jobs=1).run(points)
    for runner in (SweepRunner(jobs=1, telemetry=True),
                   SweepRunner(jobs=2, telemetry=True)):
        got = runner.run(points)
        for a, b in zip(reference, got):
            assert result_fingerprint(a) == result_fingerprint(b)


def test_worker_tracks_merge_is_deterministic():
    points = _points()
    runner = SweepRunner(jobs=2, telemetry=True)
    runner.run(points)
    tracks = worker_tracks(runner.point_telemetry)
    # Same telemetry, reversed row order: identical merged output.
    again = worker_tracks(list(reversed(runner.point_telemetry)))
    assert tracks == again
    for _, records in tracks:
        starts = [record["start"] for record in records]
        assert starts == sorted(starts)


# ----------------------------------------------------------------------
# Manifests.
# ----------------------------------------------------------------------
def test_manifest_round_trip_and_phase_sums(tmp_path):
    points = _points()
    runner = SweepRunner(jobs=2, telemetry=True)
    runner.run(points)
    manifest = RunManifest.from_runner(runner)
    path = tmp_path / "manifest.json"
    manifest.write(str(path))
    loaded = RunManifest.load(str(path))
    assert loaded.to_dict() == manifest.to_dict()
    assert loaded.schema == "repro-run-manifest/1"
    assert loaded.jobs == 2
    assert loaded.environment["cpu_count"]
    assert loaded.code_version
    assert "runner.points.total" in loaded.metrics

    executed = loaded.executed_points()
    assert len(executed) == 3
    for row in executed:
        assert row["phases"]
        total = sum(row["phases"].values())
        assert total == pytest.approx(row["wall_seconds"], rel=0.05)
        assert "timing-loop" in row["phases"]


def test_manifest_rejects_other_documents(tmp_path):
    path = tmp_path / "not-manifest.json"
    path.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ReproError, match="not a run manifest"):
        RunManifest.load(str(path))


def test_report_out_cli_writes_manifest(tmp_path, capsys):
    from repro.experiments.__main__ import main

    report = tmp_path / "report.json"
    trace = tmp_path / "trace.json"
    rc = main(["figure1", "--report-out", str(report),
               "--sweep-trace-out", str(trace), "--no-progress"])
    assert rc == 0
    manifest = RunManifest.load(str(report))
    assert manifest.points
    assert json.loads(trace.read_text())["traceEvents"] is not None


# ----------------------------------------------------------------------
# Spool transport.
# ----------------------------------------------------------------------
def test_spool_reader_consumes_only_complete_lines(tmp_path):
    spool = tmp_path / "spool"
    spool.mkdir()
    reader = TelemetryReader(str(spool))
    assert reader.poll() == []
    path = spool / "worker-1.jsonl"
    with open(path, "w") as handle:
        handle.write(json.dumps({"event": "start", "label": "a"}) + "\n")
        handle.write('{"event": "done", "lab')  # torn write
    records = reader.poll()
    assert [record["event"] for record in records] == ["start"]
    with open(path, "a") as handle:
        handle.write('el": "a"}\n')
    records = reader.poll()
    assert [record["event"] for record in records] == ["done"]
    assert reader.poll() == []  # offsets advanced; nothing re-read


def test_spool_writer_round_trips(tmp_path):
    writer = TelemetryWriter(str(tmp_path))
    writer.write({"event": "start", "label": "x"})
    writer.write({"event": "done", "label": "x", "wall": 0.5})
    reader = TelemetryReader(str(tmp_path))
    events = [record["event"] for record in reader.poll()]
    assert events == ["start", "done"]


# ----------------------------------------------------------------------
# Progress line.
# ----------------------------------------------------------------------
def test_progress_line_renders_counts_and_slowest():
    line = ProgressLine(30, stream=io.StringIO(), enabled=True)
    text = line.render(12, 5, 3, ("compress/ds2", 1.75))
    assert "12/30 done" in text
    assert "3 running" in text
    assert "cache 5/30" in text
    assert "slowest compress/ds2 1.8s" in text
    assert "eta" in text


def test_progress_line_disabled_writes_nothing():
    stream = io.StringIO()
    line = ProgressLine(10, stream=stream, enabled=False)
    line.update(5, 0, 2)
    line.finish()
    assert stream.getvalue() == ""


def test_progress_line_auto_detects_non_tty():
    line = ProgressLine(10, stream=io.StringIO(), enabled=None)
    assert line.enabled is False


def test_progress_line_emits_carriage_return_frames():
    stream = io.StringIO()
    line = ProgressLine(4, stream=stream, enabled=True)
    line.update(1, 0, 3)
    line.update(2, 0, 2)
    line.finish()
    output = stream.getvalue()
    assert output.count("\r") == 2
    assert output.endswith("\n")


def test_sweep_runs_clean_with_progress_forced_on():
    points = _points()[:2]
    reference = SweepRunner(jobs=1).run(points)
    runner = SweepRunner(jobs=2, progress=True, telemetry=True)
    got = runner.run(points)
    for a, b in zip(reference, got):
        assert result_fingerprint(a) == result_fingerprint(b)


# ----------------------------------------------------------------------
# Error-message satellites: labels and elapsed seconds.
# ----------------------------------------------------------------------
def test_runner_error_includes_label_and_elapsed():
    points = [SweepPoint.make("telemetry-bogus", label="bad-apple")]
    runner = SweepRunner(jobs=2)
    with pytest.raises(RunnerError, match=r"bad-apple.*failed after "
                                          r"\d+\.\d+s.*1 attempt") as info:
        runner.run(points)
    assert isinstance(info.value.__cause__, ReproError)


def test_timeout_error_includes_label_and_elapsed():
    points = [SweepPoint.make("sleepy", label="slow-poke", seconds=30.0)]
    runner = SweepRunner(jobs=2, timeout=0.3)
    with pytest.raises(PointTimeoutError,
                       match=r"slow-poke.*\d+\.\d+s since submit"):
        runner.run(points)


def test_timeout_with_progress_polling_preserves_semantics():
    # The live progress line makes the engine wait in sub-timeout
    # slices; a hung point must still time out (on elapsed time since
    # the last completion), not spin forever.
    points = [SweepPoint.make("sleepy", label="slow-poke", seconds=30.0)]
    runner = SweepRunner(jobs=2, timeout=0.3, progress=True)
    tick = time.perf_counter()
    with pytest.raises(PointTimeoutError, match="slow-poke"):
        runner.run(points)
    assert time.perf_counter() - tick < 10.0
