"""The content-addressed result cache: hits, invalidation, recovery."""

from __future__ import annotations

import dataclasses

from repro.experiments.config import datascalar_config
from repro.runner import ResultCache, SweepPoint, SweepRunner, \
    default_cache_dir, result_fingerprint

LIMIT = 1500


def _point(**overrides):
    keywords = dict(config=datascalar_config(2), limit=LIMIT)
    keywords.update(overrides)
    return SweepPoint.make("datascalar", "compress", **keywords)


def test_default_cache_dir_honors_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir().endswith("repro-sweeps")


def test_miss_then_hit_accounting(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    point = _point()
    hit, value = cache.load(point)
    assert (hit, value) == (False, None)
    assert (cache.hits, cache.misses) == (0, 1)
    runner = SweepRunner(jobs=1, cache=cache)
    first = runner.run([point])[0]
    assert cache.stores == 1
    hit, value = cache.load(point)
    assert hit
    assert result_fingerprint(value) == result_fingerprint(first)
    assert cache.hits == 1


def test_warm_run_skips_execution(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    SweepRunner(jobs=1, cache=cache).run([_point()])
    warm = SweepRunner(jobs=1, cache=cache)
    warm.run([_point()])
    registry = warm.registry
    assert registry.counter("runner.cache.hit").value == 1
    assert registry.counter("runner.points.executed").value == 0


def test_config_change_invalidates(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run([_point()])
    runner.run([_point(config=datascalar_config(4))])
    assert cache.hits == 0
    assert cache.stores == 2


def test_code_version_bump_invalidates(tmp_path):
    old = ResultCache(tmp_path, code_version="v1")
    SweepRunner(jobs=1, cache=old).run([_point()])
    new = ResultCache(tmp_path, code_version="v2")
    hit, _ = new.load(_point())
    assert not hit
    # The old version's entry is untouched and still serveable.
    hit, _ = old.load(_point())
    assert hit


def test_corrupted_entry_recovers_by_recompute(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    point = _point()
    baseline = SweepRunner(jobs=1, cache=cache).run([point])[0]
    path = cache._path(cache.digest_for(point))
    path.write_bytes(b"not a pickle")
    runner = SweepRunner(jobs=1, cache=cache)
    recomputed = runner.run([point])[0]
    assert cache.corrupt == 1
    assert result_fingerprint(recomputed) == result_fingerprint(baseline)
    # The recompute re-stored a good entry; the next load hits.
    hit, _ = cache.load(point)
    assert hit


def test_truncated_pickle_recovers(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    point = _point()
    SweepRunner(jobs=1, cache=cache).run([point])
    path = cache._path(cache.digest_for(point))
    path.write_bytes(path.read_bytes()[:20])
    hit, value = cache.load(point)
    assert (hit, value) == (False, None)
    assert cache.corrupt == 1
    assert not path.exists()  # the bad entry was deleted


def test_misfiled_entry_is_rejected(tmp_path):
    cache = ResultCache(tmp_path, code_version="v")
    point, other = _point(), _point(limit=LIMIT + 1)
    SweepRunner(jobs=1, cache=cache).run([point])
    good = cache._path(cache.digest_for(point))
    misfiled = cache._path(cache.digest_for(other))
    misfiled.parent.mkdir(parents=True, exist_ok=True)
    misfiled.write_bytes(good.read_bytes())
    hit, _ = cache.load(other)
    assert not hit
    assert cache.corrupt == 1


def test_cache_is_shareable_across_runners(tmp_path):
    code = "v"
    first = ResultCache(tmp_path, code_version=code)
    result = SweepRunner(jobs=1, cache=first).run([_point()])[0]
    second = ResultCache(tmp_path, code_version=code)
    cached = SweepRunner(jobs=1, cache=second).run([_point()])[0]
    assert result_fingerprint(cached) == result_fingerprint(result)
    assert second.hits == 1 and second.stores == 0
