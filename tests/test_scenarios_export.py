"""Tests for technology scenarios, CSV/JSON export, and conservative
disambiguation."""

import json

import pytest

from repro.analysis import rows_to_csv, rows_to_json, write_csv, write_json
from repro.baseline.perfect import PerfectMemory
from repro.cpu.pipeline import Pipeline
from repro.experiments import (
    SCENARIOS,
    cmp_scenario,
    iram_scenario,
    now_scenario,
    run_scenario,
    run_scenarios,
    run_table1,
)
from repro.isa import Interpreter, ProgramBuilder
from repro.params import CPUConfig
from repro.workloads import build_program


# ----------------------------------------------------------------------
# Scenarios.
# ----------------------------------------------------------------------
def test_scenarios_registered():
    assert set(SCENARIOS) == {"iram", "cmp", "now", "faulty-iram"}
    # Only the explicitly-faulty scenario carries a fault plan.
    assert all(SCENARIOS[name].faults is None
               for name in ("iram", "cmp", "now"))
    assert SCENARIOS["faulty-iram"].faults is not None


def test_scenario_parameters_are_ordered_by_integration():
    """More integration -> faster interconnect."""
    iram, cmp_, now = iram_scenario(), cmp_scenario(), now_scenario()
    assert (cmp_.bus.cycles_per_bus_cycle
            < iram.bus.cycles_per_bus_cycle
            < now.bus.cycles_per_bus_cycle)
    assert cmp_.bus.width_bytes > now.bus.width_bytes


def test_run_scenarios_cmp_fastest():
    program = build_program("compress")
    results = {r.scenario: r
               for r in run_scenarios(program, num_nodes=2, limit=5000)}
    assert set(results) == {"iram", "cmp", "now", "faulty-iram"}
    assert results["cmp"].datascalar_ipc > results["iram"].datascalar_ipc
    assert results["iram"].datascalar_ipc > results["now"].datascalar_ipc


def test_run_scenario_reports_speedup():
    program = build_program("compress")
    result = run_scenario(cmp_scenario(), program, limit=4000)
    assert result.speedup == pytest.approx(
        result.datascalar_ipc / result.traditional_ipc)


# ----------------------------------------------------------------------
# Export.
# ----------------------------------------------------------------------
def test_rows_to_csv_and_json_roundtrip():
    rows = run_table1(benchmarks=["go", "compress"], limit=20000)
    csv_text = rows_to_csv(rows)
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("benchmark,")
    assert len(lines) == 3
    parsed = json.loads(rows_to_json(rows))
    assert parsed[0]["benchmark"] == "go"
    assert 0.0 <= parsed[0]["bytes_eliminated"] < 1.0


def test_export_writes_files(tmp_path):
    rows = run_table1(benchmarks=["go"], limit=10000)
    csv_path = tmp_path / "t1.csv"
    json_path = tmp_path / "t1.json"
    write_csv(csv_path, rows)
    write_json(json_path, rows)
    assert csv_path.read_text().startswith("benchmark")
    assert json.loads(json_path.read_text())[0]["benchmark"] == "go"


def test_export_rejects_unknown_rows():
    with pytest.raises(TypeError):
        rows_to_csv([object()])


def test_export_empty():
    assert rows_to_csv([]) == ""
    assert json.loads(rows_to_json([])) == []


# ----------------------------------------------------------------------
# Conservative disambiguation.
# ----------------------------------------------------------------------
def _store_then_independent_loads():
    b = ProgramBuilder()
    base = b.alloc_global("buf", 256)
    b.li("r1", base)
    b.li("r5", base + 128)
    # A store whose value depends on a long FDIV chain...
    b.li("r2", 7)
    b.cvtif("f1", "r2")
    for _ in range(6):
        b.fdiv("f1", "f1", "f1")
    b.cvtfi("r3", "f1")
    b.sw("r3", "r1", 0)
    # ...followed by loads to a different address.
    for offset in range(0, 64, 4):
        b.lw("r4", "r5", offset)
    b.halt()
    return b.build()


class _SpyMemory(PerfectMemory):
    """Records the cycle each load issued."""

    def __init__(self):
        super().__init__()
        self.issue_cycles = []

    def load_issue(self, now, addr, size):
        self.issue_cycles.append(now)
        return super().load_issue(now, addr, size)


def _run(config):
    spy = _SpyMemory()
    pipeline = Pipeline(config, spy,
                        Interpreter(_store_then_independent_loads()).trace())
    stats = pipeline.run(100_000)
    return stats, spy


def test_conservative_disambiguation_delays_independent_loads():
    """Oracle mode issues the different-address loads immediately;
    conservative mode holds them until the slow store has issued."""
    oracle_stats, oracle_spy = _run(CPUConfig(oracle_disambiguation=True))
    cons_stats, cons_spy = _run(CPUConfig(oracle_disambiguation=False))
    assert cons_stats.committed == oracle_stats.committed
    assert min(cons_spy.issue_cycles) > min(oracle_spy.issue_cycles) + 30


def test_conservative_still_forwards_same_address():
    b = ProgramBuilder()
    base = b.alloc_global("x", 8)
    b.li("r1", base)
    b.li("r2", 42)
    b.sw("r2", "r1", 0)
    b.lw("r3", "r1", 0)
    b.halt()

    class NeverLoad(PerfectMemory):
        def load_issue(self, now, addr, size):
            raise AssertionError("should forward from the LSQ")

    pipeline = Pipeline(CPUConfig(oracle_disambiguation=False), NeverLoad(),
                        Interpreter(b.build()).trace())
    stats = pipeline.run(100_000)
    assert stats.loads == 1


def test_export_extra_columns():
    from repro.analysis.export import rows_to_csv
    rows = run_table1(benchmarks=["go"], limit=5000)
    text = rows_to_csv(rows, extra_columns=[{"nodes": 2}])
    lines = text.strip().splitlines()
    assert lines[0].endswith(",nodes")
    assert lines[1].endswith(",2")


def test_scenarios_at_four_nodes():
    from repro.experiments import iram_scenario, run_scenario
    result = run_scenario(iram_scenario(), build_program("compress"),
                          num_nodes=4, limit=4000)
    assert result.datascalar_ipc > 0
    assert result.speedup > 1.0
