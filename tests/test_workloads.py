"""Tests for the fifteen SPEC95-like workload kernels."""

import pytest

from repro.errors import ReproError
from repro.isa import Interpreter
from repro.workloads import (
    TABLE_BENCHMARKS,
    TIMING_BENCHMARKS,
    WORKLOADS,
    build_program,
    get_workload,
)

ALL_NAMES = sorted(WORKLOADS)


def _checksum(program):
    interp = Interpreter(program, max_instructions=5_000_000)
    result = interp.run()
    assert result.halted, f"{program.name} did not halt"
    csum_addr = None
    # Every kernel allocates the conventional "checksum" slot first in
    # its global segment region; find it via the data image is fragile,
    # so read back the whole result and compare memory dicts instead.
    return result, interp.memory


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def test_registry_contains_fifteen_kernels():
    assert len(WORKLOADS) == 15


def test_table_benchmarks_are_the_papers_fourteen():
    assert len(TABLE_BENCHMARKS) == 14
    assert "go" not in TABLE_BENCHMARKS
    assert all(name in WORKLOADS for name in TABLE_BENCHMARKS)


def test_timing_benchmarks_are_the_papers_six():
    assert sorted(TIMING_BENCHMARKS) == [
        "applu", "compress", "go", "mgrid", "turb3d", "wave5",
    ]


def test_unknown_workload_rejected():
    with pytest.raises(ReproError):
        get_workload("doom")


def test_bad_scale_rejected():
    with pytest.raises(ReproError):
        get_workload("go").build(0)


def test_categories_cover_fp_and_int():
    categories = {w.category for w in WORKLOADS.values()}
    assert categories == {"fp", "int"}


# ----------------------------------------------------------------------
# Every kernel builds, halts, and touches memory.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_NAMES)
def test_kernel_halts_within_budget(name):
    program = build_program(name)
    interp = Interpreter(program, max_instructions=5_000_000)
    result = interp.run()
    assert result.halted
    assert 5_000 < result.instructions < 1_000_000
    assert result.loads > 100
    assert result.stores > 50


@pytest.mark.parametrize("name", ALL_NAMES)
def test_kernel_is_deterministic(name):
    program = build_program(name)
    first = Interpreter(program)
    first.run()
    second = Interpreter(build_program(name))
    second.run()
    assert first.memory == second.memory
    assert first.instructions_executed == second.instructions_executed


@pytest.mark.parametrize("name", [n for n in ALL_NAMES if n != "fpppp"])
def test_kernel_data_spans_multiple_pages(name):
    """Distribution needs data on more than one 4KB page.  fpppp is the
    deliberate exception — its fingerprint is a tiny data set under a
    large text segment."""
    program = build_program(name)
    footprint = program.global_bytes + program.heap_bytes
    assert footprint > 4096, f"{name} data fits one page ({footprint}B)"


def test_scale_grows_the_run():
    small = Interpreter(build_program("tomcatv", 1))
    small.run()
    big = Interpreter(build_program("tomcatv", 2), max_instructions=10_000_000)
    big.run()
    assert big.instructions_executed > 2 * small.instructions_executed


def test_compress_issues_almost_as_many_stores_as_loads():
    """The property behind compress's Figure 7 win."""
    interp = Interpreter(build_program("compress"))
    result = interp.run()
    ratio = result.stores / result.loads
    assert 0.7 < ratio < 1.4


def test_fpppp_text_dominates_data():
    program = build_program("fpppp")
    assert program.text_bytes > program.global_bytes


def test_li_heap_is_small_and_hot():
    program = build_program("li")
    assert program.heap_bytes <= 64 * 1024
    result = Interpreter(program).run()
    # Tiny data set, many references: high reuse.
    assert result.loads > program.heap_bytes / 8


def test_fp_kernels_use_fp_arithmetic():
    from repro.isa.opcodes import OP_CLASS, OpClass
    for name in ("tomcatv", "swim", "mgrid", "applu", "turb3d", "fpppp"):
        program = build_program(name)
        classes = {OP_CLASS[i.op] for i in program.instructions}
        assert OpClass.FADD in classes or OpClass.FMULT in classes, name
