"""Tests for hybrid SPSD/SPMD execution (paper Section 5.2)."""

import pytest

from repro.core import (
    DataScalarSystem,
    HybridSystem,
    ParallelPhase,
    SerialPhase,
)
from repro.errors import ConfigError
from repro.isa import ProgramBuilder
from repro.params import CacheConfig, MemoryConfig, NodeConfig, SystemConfig

PAGE = 4096
WORDS = 4096  # 16KB array


def _node():
    cache = CacheConfig(size_bytes=2048, assoc=1, line_size=32,
                        write_allocate=False)
    return NodeConfig(icache=CacheConfig(size_bytes=4096), dcache=cache,
                      memory=MemoryConfig(page_size=PAGE))


def _config(num_nodes=2):
    return SystemConfig(num_nodes=num_nodes, node=_node(),
                        distribution_block_pages=1)


def _sum_program(words, start=0):
    """Sum ``words`` array words starting at element ``start``."""
    b = ProgramBuilder(f"sum-{start}")
    arr = b.alloc_global("arr", WORDS * 4)
    for i in range(start, start + words):
        b.init_word(arr + 4 * i, i)
    b.li("r1", arr + 4 * start)
    b.li("r2", 0)
    with b.repeat(words, "r3"):
        b.lw("r4", "r1", 0)
        b.add("r2", "r2", "r4")
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def test_serial_phase_equals_datascalar_run():
    program = _sum_program(WORDS)
    hybrid = HybridSystem(_config()).run([SerialPhase(program)])
    direct = DataScalarSystem(_config()).run(program)
    assert hybrid.phases[0].kind == "spsd"
    assert hybrid.phases[0].cycles == direct.cycles
    assert hybrid.barrier_cycles == 0


def test_parallel_phase_takes_slowest_node():
    short = _sum_program(WORDS // 4)
    long = _sum_program(WORDS // 2)
    hybrid = HybridSystem(_config()).run(
        [ParallelPhase(programs=[short, long])])
    phase = hybrid.phases[0]
    assert phase.kind == "spmd"
    assert len(phase.node_cycles) == 2
    assert phase.cycles == max(phase.node_cycles)
    assert phase.node_cycles[1] > phase.node_cycles[0]


def test_parallel_split_beats_serial_spsd():
    """The paper's §5.2 motivation: when the loop partitions cleanly,
    running it SPMD on the same hardware beats redundant execution."""
    whole = _sum_program(WORDS)
    halves = [_sum_program(WORDS // 2, start=0),
              _sum_program(WORDS // 2, start=WORDS // 2)]
    serial = HybridSystem(_config()).run([SerialPhase(whole)])
    parallel = HybridSystem(_config()).run(
        [ParallelPhase(programs=halves, boundary_bytes=8)])
    assert parallel.total_cycles < serial.total_cycles


def test_barrier_cost_counted():
    halves = [_sum_program(64), _sum_program(64)]
    tiny = HybridSystem(_config()).run(
        [ParallelPhase(programs=halves, boundary_bytes=8)])
    bulky = HybridSystem(_config()).run(
        [ParallelPhase(programs=halves, boundary_bytes=4096)])
    assert bulky.barrier_cycles > tiny.barrier_cycles


def test_mixed_schedule_accumulates_phases():
    serial = _sum_program(256)
    halves = [_sum_program(128), _sum_program(128, start=128)]
    result = HybridSystem(_config()).run([
        SerialPhase(serial),
        ParallelPhase(programs=halves),
        SerialPhase(serial),
    ])
    assert [p.kind for p in result.phases] == ["spsd", "spmd", "spsd"]
    assert result.total_cycles == (sum(p.cycles for p in result.phases)
                                   + result.barrier_cycles)
    assert 0.0 < result.parallel_fraction < 1.0
    assert result.total_instructions == sum(p.instructions
                                            for p in result.phases)


def test_wrong_program_count_rejected():
    with pytest.raises(ConfigError):
        HybridSystem(_config(2)).run(
            [ParallelPhase(programs=[_sum_program(16)])])


def test_empty_schedule_rejected():
    with pytest.raises(ConfigError):
        HybridSystem(_config()).run([])


def test_unknown_phase_type_rejected():
    with pytest.raises(ConfigError):
        HybridSystem(_config()).run(["not a phase"])
