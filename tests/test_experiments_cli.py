"""Tests for the ``python -m repro.experiments`` command-line runner."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, build_parser, main, \
    run_one


def test_every_experiment_registered():
    assert set(EXPERIMENTS) == {
        "figure1", "figure3", "figure7", "figure8",
        "table1", "table2", "table3", "scaling", "resilience",
        "traced-run", "sharded-run",
    }


def test_parser_accepts_all_and_list():
    parser = build_parser()
    assert parser.parse_args(["all"]).experiment == "all"
    assert parser.parse_args(["list"]).experiment == "list"
    args = parser.parse_args(["table1", "--limit", "500"])
    assert args.limit == 500


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure99"])


def test_parser_accepts_fault_flags():
    args = build_parser().parse_args(
        ["resilience", "--fault-seed", "3", "--drop-prob", "1e-3"])
    assert args.fault_seed == 3
    assert args.drop_prob == pytest.approx(1e-3)


def test_run_one_resilience_single_point(tmp_path):
    csv_path = tmp_path / "res.csv"
    text = run_one("resilience", limit=800, csv_path=str(csv_path),
                   fault_seed=5, drop_prob=1e-3)
    assert "Resilience" in text
    lines = csv_path.read_text().strip().splitlines()
    assert lines[0].startswith("workload,")
    assert len(lines) == 3  # header + fault-free anchor + one faulty point


def test_run_one_figure1():
    text = run_one("figure1", limit=None)
    assert "Figure 1" in text


def test_run_one_table1_with_csv(tmp_path):
    csv_path = tmp_path / "t1.csv"
    text = run_one("table1", limit=5000, csv_path=str(csv_path))
    assert "Table 1" in text
    assert csv_path.read_text().startswith("benchmark")


def test_csv_rejected_for_non_row_experiments(tmp_path):
    with pytest.raises(SystemExit):
        run_one("figure1", limit=None, csv_path=str(tmp_path / "x.csv"))


def test_run_one_traced_run_roundtrip(tmp_path):
    import json

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.txt"
    text = run_one("traced-run", limit=800, trace_out=str(trace_path),
                   metrics_out=str(metrics_path))
    assert "traced-run" in text
    assert "SPSD lockstep: OK" in text
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
    metrics = metrics_path.read_text()
    assert "run.cycles" in metrics
    assert "trace.events.commit" in metrics


def test_main_traced_run_flags(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    assert main(["traced-run", "--limit", "800",
                 "--trace-out", str(trace_path)]) == 0
    assert "SPSD lockstep: OK" in capsys.readouterr().out
    from repro.obs import from_jsonl

    events = from_jsonl(trace_path.read_text())
    assert events and {event.node for event in events} == {0, 1, 2, 3}


def test_main_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "figure7" in out


def test_main_single_experiment(capsys):
    assert main(["figure1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_main_profile_writes_pstats(tmp_path, capsys):
    import pstats

    path = tmp_path / "figure1.pstats"
    assert main(["figure1", "--profile", str(path)]) == 0
    assert "Figure 1" in capsys.readouterr().out
    assert path.exists()
    stats = pstats.Stats(str(path))
    assert stats.total_calls > 0


def test_parser_accepts_robustness_flags():
    args = build_parser().parse_args(
        ["figure7", "--retries", "2", "--point-timeout", "30",
         "--journal", "/tmp/j.journal"])
    assert args.retries == 2
    assert args.point_timeout == pytest.approx(30.0)
    assert args.journal == "/tmp/j.journal"
    assert build_parser().parse_args(
        ["figure7", "--resume", "x.journal"]).resume == "x.journal"


def test_resume_conflicts_are_rejected(tmp_path):
    with pytest.raises(SystemExit, match="no-cache"):
        main(["figure1", "--resume", str(tmp_path / "j"), "--no-cache"])
    with pytest.raises(SystemExit, match="journal"):
        main(["figure1", "--resume", str(tmp_path / "j"),
              "--journal", str(tmp_path / "j2")])


def test_main_journal_and_resume_roundtrip(tmp_path, capsys):
    journal = tmp_path / "sweep.journal"
    cache = tmp_path / "cache"
    assert main(["figure1", "--journal", str(journal),
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert journal.exists()
    assert main(["figure1", "--resume", str(journal),
                 "--cache-dir", str(cache)]) == 0
    assert "resuming" in capsys.readouterr().err
