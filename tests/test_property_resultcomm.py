"""Property-based tests for the result-communication trace filter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resultcomm_exec import ExecRegion, filter_trace
from repro.isa import Interpreter, ProgramBuilder

PAGE = 4096


def _program(n=60):
    b = ProgramBuilder()
    base = b.alloc_global("buf", 1024)
    b.li("r1", base)
    for i in range(n):
        if i % 3 == 0:
            b.lw("r2", "r1", (i % 16) * 4)
        elif i % 3 == 1:
            b.addi("r2", "r2", 1)
        else:
            b.sw("r2", "r1", (i % 16) * 4)
    b.halt()
    return b.build()


@st.composite
def region_sets(draw):
    """Non-overlapping regions within the 61-record trace."""
    count = draw(st.integers(min_value=0, max_value=3))
    bounds = sorted(draw(st.lists(
        st.integers(min_value=1, max_value=55),
        min_size=2 * count, max_size=2 * count, unique=True)))
    regions = []
    for i in range(count):
        start, end = bounds[2 * i], bounds[2 * i + 1]
        owner = draw(st.integers(min_value=0, max_value=1))
        regions.append(ExecRegion(start, end, owner))
    return regions


def _records(regions, node_id):
    return list(filter_trace(Interpreter(_program()).trace(), regions,
                             node_id, num_nodes=2, page_size=PAGE))


@given(region_sets())
@settings(max_examples=80, deadline=None)
def test_sequence_numbers_dense_and_increasing(regions):
    for node in (0, 1):
        records = _records(regions, node)
        assert [r.seq for r in records] == list(range(len(records)))


@given(region_sets())
@settings(max_examples=80, deadline=None)
def test_one_mailbox_per_region_at_every_node(regions):
    for node in (0, 1):
        records = _records(regions, node)
        mailboxes = [r for r in records
                     if r.addr is not None and r.addr >= 0x8000_0000]
        assert len(mailboxes) == len(regions)


def _is_subsequence(small, big) -> bool:
    iterator = iter(big)
    return all(any(item == candidate for candidate in iterator)
               for item in small)


@given(region_sets())
@settings(max_examples=80, deadline=None)
def test_nonowner_stream_is_subsequence_of_owner_stream(regions):
    """Non-owners drop exactly the in-region records; everything they do
    keep appears in the owner's stream in the same order."""
    owners = {r.owner for r in regions}
    if owners != {0}:  # make node 0 own everything for a clean inclusion
        regions = [ExecRegion(r.start_seq, r.end_seq, 0) for r in regions]
    keyed_owner = [(r.pc, r.op_class, r.addr) for r in _records(regions, 0)
                   if r.addr is None or r.addr < 0x8000_0000]
    keyed_other = [(r.pc, r.op_class, r.addr) for r in _records(regions, 1)
                   if r.addr is None or r.addr < 0x8000_0000]
    assert len(keyed_other) <= len(keyed_owner)
    assert _is_subsequence(keyed_other, keyed_owner)


@given(region_sets())
@settings(max_examples=80, deadline=None)
def test_private_records_only_at_owner(regions):
    for node in (0, 1):
        records = _records(regions, node)
        for record in records:
            if record.private:
                # Private records exist only inside regions this node
                # owns; a non-owner never sees private work.
                assert any(r.owner == node for r in regions)


@given(region_sets())
@settings(max_examples=50, deadline=None)
def test_empty_region_list_is_identity(regions):
    if regions:
        return
    original = list(Interpreter(_program()).trace())
    filtered = _records([], 0)
    assert len(filtered) == len(original)
    assert all(not r.private for r in filtered)
