"""Tests for the run timeline sampler."""

import pytest

from repro.analysis.timeline import Timeline, TimelineRecorder, \
    TimelineSample
from repro.core import DataScalarSystem
from repro.experiments import datascalar_config, timing_node_config
from repro.workloads import build_program


def _record(limit=4000, sample_every=100):
    recorder = TimelineRecorder(sample_every=sample_every)
    program = build_program("compress")
    result = DataScalarSystem(
        datascalar_config(2, node=timing_node_config())).run(
        program, limit=limit, observer=recorder)
    return recorder.timeline, result


def test_recorder_samples_at_interval():
    timeline, result = _record(sample_every=100)
    cycles = timeline.cycles()
    assert cycles
    assert all(c % 100 == 0 for c in cycles)
    assert cycles[-1] <= result.cycles


def test_committed_series_is_monotone_per_node():
    timeline, result = _record()
    for node in (0, 1):
        series = timeline.series("committed", node=node)
        assert all(a <= b for a, b in zip(series, series[1:]))
        assert series[-1] <= result.instructions


def test_bus_transactions_series_monotone_and_final():
    timeline, result = _record()
    series = timeline.series("bus_transactions")
    assert all(a <= b for a, b in zip(series, series[1:]))
    assert series[-1] <= result.bus_transactions


def test_commit_skew_nonnegative():
    timeline, _ = _record()
    assert all(skew >= 0 for skew in timeline.commit_skew())


def test_per_node_series_requires_node_argument():
    timeline, _ = _record(limit=1000)
    with pytest.raises(ValueError):
        timeline.series("committed")


def test_to_csv_shape():
    timeline, _ = _record(limit=1000)
    text = timeline.to_csv()
    lines = text.strip().splitlines()
    assert lines[0].startswith("cycle,committed_0,committed_1")
    assert len(lines) == len(timeline.samples) + 1


def test_to_csv_schema_regression():
    """The public CSV schema must not drift: exact header and one row
    per sample, regardless of the registry-backed storage."""
    timeline, _ = _record(limit=1000)
    lines = timeline.to_csv().strip().splitlines()
    assert lines[0] == ("cycle,committed_0,committed_1,bshr_0,bshr_1,"
                        "dcub_0,dcub_1,broadcasts_0,broadcasts_1,"
                        "bus_transactions")
    for line in lines[1:]:
        assert len(line.split(",")) == 10
    first = lines[1].split(",")
    sample = timeline.samples[0]
    assert first == [str(sample.cycle), *map(str, sample.committed),
                     *map(str, sample.bshr_occupancy),
                     *map(str, sample.dcub_occupancy),
                     *map(str, sample.broadcasts_sent),
                     str(sample.bus_transactions)]


def test_timeline_series_live_in_registry():
    """The samples are registry series under ``timeline.*``; exporting
    the registry carries the timeline."""
    timeline, _ = _record(limit=1000)
    registry = timeline.registry
    assert "timeline.cycle" in registry
    assert "timeline.committed.0" in registry
    assert registry.series("timeline.cycle").values == timeline.cycles()
    assert len(registry.subtree("timeline")) == 2 + 4 * 2


def test_empty_timeline_csv():
    assert Timeline().to_csv() == ""


def test_recorder_validation():
    with pytest.raises(ValueError):
        TimelineRecorder(sample_every=0)
